//! HE operation vocabulary, the unified op-descriptor registry, and
//! operation traces.
//!
//! The paper accounts its workloads in *HE operations* (HOPs): PCadd,
//! PCmult, CCadd, CCmult, Rescale, and KeySwitch (covering both
//! Relinearize and Rotate — Sec. II-A). [`HeOpKind`] is the shared
//! vocabulary used by the evaluator (which can record what it executes),
//! the HE-CNN lowering (which generates traces analytically) and the
//! hardware model (which costs them).
//!
//! Every per-op property the stack needs — display name, span label,
//! hardware module label, KeySwitch classification, word-multiplication
//! cost hook, metric label and chaos fault class — lives in one
//! [`OpSpec`] row of [`OP_REGISTRY`]. The registry is generated together
//! with the enum by a single macro invocation, so registering a new
//! operation (as `Sign` and `CtMatmul` were) is a one-site edit: add a
//! row, and the trace vocabulary, telemetry families, cost model mapping
//! and fault taxonomy all pick it up.

/// One row of the op-descriptor registry: everything the rest of the
/// stack needs to know about a [`HeOpKind`], declared in one place.
#[derive(Debug, Clone, Copy)]
pub struct OpSpec {
    /// The operation kind this row describes.
    pub kind: HeOpKind,
    /// Canonical display name — also the `op="…"` label of the
    /// `fxhenn_he_*` and `fxhenn_noise_*` metric families.
    pub name: &'static str,
    /// Human-readable span label for per-op attribution reports.
    pub span_label: &'static str,
    /// The hardware module label ("OP1" … "OP7") that keys this kind
    /// into the `fxhenn-hw` module cost table.
    pub module_label: &'static str,
    /// True for the KeySwitch family the paper groups as "OP5".
    pub is_key_switch: bool,
    /// The chaos fault class that targets this operation family (the
    /// `fxhenn-core` chaos harness draws its fault taxonomy from here).
    pub fault_class: &'static str,
    /// Modular multiplications performed by one such operation at
    /// ciphertext level `level` over ring degree `n` (paper Table IV).
    pub modmuls: fn(level: usize, n: usize) -> u64,
}

/// Declares the operation enum and its descriptor registry from one
/// list — the single site where operations register.
macro_rules! define_he_ops {
    ($(
        $(#[$doc:meta])*
        $variant:ident {
            name: $name:literal,
            span: $span:literal,
            module: $module:literal,
            key_switch: $ks:literal,
            fault_class: $fault:literal,
            modmuls: $modmuls:expr,
        }
    ),* $(,)?) => {
        /// One homomorphic operation kind, as the registry enumerates
        /// them (the paper's OP1–OP5 set plus the composite workloads).
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub enum HeOpKind {
            $($(#[$doc])* $variant,)*
        }

        impl HeOpKind {
            /// Number of registered operation kinds.
            pub const COUNT: usize = <[HeOpKind]>::len(&[$(HeOpKind::$variant),*]);

            /// All operation kinds, in registry (= declaration) order.
            pub const ALL: [HeOpKind; Self::COUNT] = [$(HeOpKind::$variant),*];
        }

        /// The op-descriptor registry, indexed by [`HeOpKind::index`].
        pub const OP_REGISTRY: [OpSpec; HeOpKind::COUNT] = [
            $(OpSpec {
                kind: HeOpKind::$variant,
                name: $name,
                span_label: $span,
                module_label: $module,
                is_key_switch: $ks,
                fault_class: $fault,
                modmuls: $modmuls,
            },)*
        ];
    };
}

define_he_ops! {
    /// Ciphertext + ciphertext addition (paper "OP1").
    CcAdd {
        name: "CCadd",
        span: "ct+ct add",
        module: "OP1",
        key_switch: false,
        fault_class: "arith",
        modmuls: modmuls_free,
    },
    /// Plaintext + ciphertext addition.
    PcAdd {
        name: "PCadd",
        span: "pt+ct add",
        module: "OP1",
        key_switch: false,
        fault_class: "arith",
        modmuls: modmuls_free,
    },
    /// Plaintext × ciphertext multiplication (paper "OP2").
    PcMult {
        name: "PCmult",
        span: "pt×ct mult",
        module: "OP2",
        key_switch: false,
        fault_class: "arith",
        modmuls: modmuls_pc_mult,
    },
    /// Ciphertext × ciphertext multiplication (paper "OP3"), excluding
    /// the relinearization.
    CcMult {
        name: "CCmult",
        span: "ct×ct mult",
        module: "OP3",
        key_switch: false,
        fault_class: "arith",
        modmuls: modmuls_cc_mult,
    },
    /// Rescale after a multiplication (paper "OP4").
    Rescale {
        name: "Rescale",
        span: "rescale",
        module: "OP4",
        key_switch: false,
        fault_class: "scale",
        modmuls: modmuls_rescale,
    },
    /// Modulus switch: dropping RNS components to reach a lower level
    /// without dividing the scale. Costs like a truncated Rescale, so it
    /// shares the paper's "OP4" module.
    ModSwitch {
        name: "ModSwitch",
        span: "mod switch",
        module: "OP4",
        key_switch: false,
        fault_class: "scale",
        modmuls: modmuls_free,
    },
    /// Relinearization key switch (paper "OP5" KeySwitch).
    Relinearize {
        name: "Relinearize",
        span: "relinearize",
        module: "OP5",
        key_switch: true,
        fault_class: "key-switch",
        modmuls: modmuls_key_switch,
    },
    /// Rotation key switch (paper "OP5" KeySwitch).
    Rotate {
        name: "Rotate",
        span: "rotate",
        module: "OP5",
        key_switch: true,
        fault_class: "key-switch",
        modmuls: modmuls_key_switch,
    },
    /// Conjugation key switch (paper "OP5" KeySwitch). Same datapath as
    /// a rotation but under the Galois element `2N − 1`, so it is
    /// tracked separately for accounting.
    Conjugate {
        name: "Conjugate",
        span: "conjugate",
        module: "OP5",
        key_switch: true,
        fault_class: "key-switch",
        modmuls: modmuls_key_switch,
    },
    /// One composite-minimax sign stage: the odd degree-3 polynomial
    /// `x·(a + b·x²)` evaluated homomorphically (square + relinearize +
    /// rescale, coefficient PCmult + rescale, final CCmult + relinearize
    /// + rescale). Recorded once per composition stage at the stage's
    /// entry level; the constituent primitives are folded into this
    /// macro record ("OP6").
    Sign {
        name: "Sign",
        span: "sign stage",
        module: "OP6",
        key_switch: false,
        fault_class: "sign-precision",
        modmuls: modmuls_sign_stage,
    },
    /// One blocked ciphertext × ciphertext matrix multiply over a
    /// `d × d` tile (baby-step/giant-step σ/τ diagonal transforms, the
    /// column/row shift products and the closing relinearize). Recorded
    /// once per block at the block's entry level ("OP7").
    CtMatmul {
        name: "CtMatmul",
        span: "ct×ct matmul block",
        module: "OP7",
        key_switch: false,
        fault_class: "matmul-block",
        modmuls: modmuls_ct_matmul,
    },
}

impl HeOpKind {
    /// This kind's position in [`ALL`](HeOpKind::ALL) — a stable dense
    /// index used to address per-kind metric arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// This kind's registry row.
    #[inline]
    pub fn spec(self) -> &'static OpSpec {
        &OP_REGISTRY[self as usize]
    }

    /// True for the KeySwitch family (Relinearize, Rotate and Conjugate),
    /// the operations the paper groups as "OP5".
    pub fn is_key_switch(self) -> bool {
        self.spec().is_key_switch
    }

    /// The hardware module label for this operation ("OP1" … "OP7").
    pub fn module_label(self) -> &'static str {
        self.spec().module_label
    }

    /// The chaos fault class targeting this operation family.
    pub fn fault_class(self) -> &'static str {
        self.spec().fault_class
    }

    /// Modular multiplications one such operation performs at ciphertext
    /// level `level` over ring degree `n` (the registry's cost hook).
    pub fn modmuls(self, level: usize, n: usize) -> u64 {
        (self.spec().modmuls)(level, n)
    }
}

impl std::fmt::Display for HeOpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.spec().name)
    }
}

// ---------------------------------------------------------------------
// Registry cost hooks: modular-multiplication counts per op (the
// hardware-independent "MACs of HOPs" accounting, paper Table IV). The
// formulas mirror the software evaluator in this crate.
// ---------------------------------------------------------------------

/// Modular multiplications in one NTT or INTT pass over `n` coefficients:
/// `log2(n) · n/2` butterflies, one twiddle multiply each.
pub fn ntt_mults(n: usize) -> u64 {
    (n as u64 / 2) * n.trailing_zeros() as u64
}

/// The canonical ct×ct matmul block dimension at ring degree `n`: the
/// largest power of two `d ≤ 64` whose `d × d` tile (one matrix pattern
/// per `d²`-slot period) fits the slot count. At the paper's `N = 8192`
/// this is the full 64×64 tile; the toy test ring (`N = 1024`) gets 16.
pub fn matmul_block_dim(n: usize) -> usize {
    let slots = (n / 2).max(1);
    let mut d = 1usize;
    while d < 64 && (2 * d) * (2 * d) <= slots {
        d *= 2;
    }
    d
}

fn modmuls_free(_level: usize, _n: usize) -> u64 {
    0
}

fn modmuls_pc_mult(level: usize, n: usize) -> u64 {
    2 * level as u64 * n as u64
}

fn modmuls_cc_mult(level: usize, n: usize) -> u64 {
    4 * level as u64 * n as u64
}

fn modmuls_rescale(level: usize, n: usize) -> u64 {
    let l = level as u64;
    2 * (l * ntt_mults(n) + 2 * n as u64 * l.saturating_sub(1))
}

fn modmuls_key_switch(level: usize, n: usize) -> u64 {
    let l = level as u64;
    let n_u = n as u64;
    let ntt = ntt_mults(n);
    // digit lifts: level digits × (level + 1) NTTs
    let lift = l * (l + 1) * ntt;
    // inner products: 2 accumulators × level digits × (level+1) residues
    let inner = 2 * l * (l + 1) * n_u;
    // input INTT (one polynomial of `level` residues)
    let input = l * ntt;
    // mod-down: 2 polys × (level+1) INTT + 2 polys × level NTT back
    // + 2 polys × level pointwise corrections
    let down = 2 * (l + 1) * ntt + 2 * l * ntt + 2 * l * n_u;
    lift + inner + input + down
}

/// One sign composition stage `x·(a + b·x²)` entered at `level`:
/// square (CCmult + KeySwitch + Rescale at `level`), coefficient fold
/// (PCmult + Rescale one level down), and the closing product
/// (CCmult + KeySwitch + Rescale two levels down). Consumes 3 levels.
fn modmuls_sign_stage(level: usize, n: usize) -> u64 {
    let l1 = level.max(3);
    let l2 = l1 - 1;
    let l3 = l1 - 2;
    modmuls_cc_mult(l1, n)
        + modmuls_key_switch(l1, n)
        + modmuls_rescale(l1, n)
        + modmuls_pc_mult(l2, n)
        + modmuls_rescale(l2, n)
        + modmuls_cc_mult(l3, n)
        + modmuls_key_switch(l3, n)
        + modmuls_rescale(l3, n)
}

/// Rotation count of a baby-step/giant-step masked-rotation sum over
/// `diagonals` distinct shifts: `⌈√diagonals⌉` baby rotations plus one
/// giant rotation per group.
pub fn bsgs_rotations(diagonals: usize) -> usize {
    if diagonals <= 1 {
        return 0;
    }
    let baby = (diagonals as f64).sqrt().ceil() as usize;
    let giant = diagonals.div_ceil(baby);
    // Baby shift 0 and giant shift 0 are free (identity rotations).
    (baby - 1) + (giant - 1)
}

/// One blocked ct×ct matmul over the canonical `d × d` tile entered at
/// `level`: BSGS σ (2d−1 diagonals) and τ (d diagonals) transforms with
/// their mask PCmults and rescales, `d` column/row shift product terms
/// (two masked column rotations each, one row rotation, one CCmult) and
/// the single closing relinearize + rescale. Consumes 3 levels.
fn modmuls_ct_matmul(level: usize, n: usize) -> u64 {
    let d = matmul_block_dim(n);
    let l1 = level.max(3);
    let l2 = l1 - 1;
    let l3 = l1 - 2;
    // σ/τ transforms at the entry level.
    let transform_rots = (bsgs_rotations(2 * d - 1) + bsgs_rotations(d)) as u64;
    let transform_pcm = (2 * d - 1 + d) as u64;
    let transforms = transform_rots * modmuls_key_switch(l1, n)
        + transform_pcm * modmuls_pc_mult(l1, n)
        + 2 * modmuls_rescale(l1, n);
    // Column shifts of σA (two masked rotations + rescale per k ≥ 1) and
    // row shifts of τB (one rotation per k ≥ 1), one level down.
    let k_terms = (d - 1) as u64;
    let shifts = k_terms
        * (3 * modmuls_key_switch(l2, n)
            + 2 * modmuls_pc_mult(l2, n)
            + modmuls_rescale(l2, n));
    // d shifted products accumulated in 3-poly form, then one
    // relinearize + rescale, two levels down.
    let products = d as u64 * modmuls_cc_mult(l3, n)
        + modmuls_key_switch(l3, n)
        + modmuls_rescale(l3, n);
    transforms + shifts + products
}

/// One executed (or planned) HE operation: the kind and the ciphertext
/// level it runs at (the level determines its cost, Eq. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeOpRecord {
    /// The operation kind.
    pub kind: HeOpKind,
    /// Ciphertext level `L` at execution time (number of RNS components).
    pub level: usize,
}

/// An ordered trace of HE operations with counting helpers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpTrace {
    records: Vec<HeOpRecord>,
}

impl OpTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an operation.
    pub fn record(&mut self, kind: HeOpKind, level: usize) {
        self.records.push(HeOpRecord { kind, level });
    }

    /// Appends `count` identical operations.
    pub fn record_many(&mut self, kind: HeOpKind, level: usize, count: usize) {
        self.records
            .extend(std::iter::repeat_n(HeOpRecord { kind, level }, count));
    }

    /// All records in execution order.
    pub fn records(&self) -> &[HeOpRecord] {
        &self.records
    }

    /// Total HOP count (every record counts as one HOP, as in the paper's
    /// Table VI/VII accounting).
    pub fn hop_count(&self) -> usize {
        self.records.len()
    }

    /// Number of KeySwitch operations (Relinearize + Rotate), the paper's
    /// "KS" column.
    pub fn key_switch_count(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.kind.is_key_switch())
            .count()
    }

    /// Number of records of one kind.
    pub fn count_of(&self, kind: HeOpKind) -> usize {
        self.records.iter().filter(|r| r.kind == kind).count()
    }

    /// The set of distinct operation kinds, in `HeOpKind::ALL` order.
    pub fn kinds_used(&self) -> Vec<HeOpKind> {
        HeOpKind::ALL
            .into_iter()
            .filter(|&k| self.count_of(k) > 0)
            .collect()
    }

    /// Extends this trace with another.
    pub fn extend_from(&mut self, other: &OpTrace) {
        self.records.extend_from_slice(other.records());
    }

    /// True if no operations were recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl FromIterator<HeOpRecord> for OpTrace {
    fn from_iter<T: IntoIterator<Item = HeOpRecord>>(iter: T) -> Self {
        Self {
            records: iter.into_iter().collect(),
        }
    }
}

impl Extend<HeOpRecord> for OpTrace {
    fn extend<T: IntoIterator<Item = HeOpRecord>>(&mut self, iter: T) {
        self.records.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyswitch_classification_matches_paper() {
        assert!(HeOpKind::Relinearize.is_key_switch());
        assert!(HeOpKind::Rotate.is_key_switch());
        assert!(HeOpKind::Conjugate.is_key_switch());
        for k in [
            HeOpKind::CcAdd,
            HeOpKind::PcAdd,
            HeOpKind::PcMult,
            HeOpKind::CcMult,
            HeOpKind::Rescale,
            HeOpKind::ModSwitch,
            HeOpKind::Sign,
            HeOpKind::CtMatmul,
        ] {
            assert!(!k.is_key_switch(), "{k} is not a key switch");
        }
    }

    #[test]
    fn module_labels_match_table1() {
        assert_eq!(HeOpKind::CcAdd.module_label(), "OP1");
        assert_eq!(HeOpKind::PcMult.module_label(), "OP2");
        assert_eq!(HeOpKind::CcMult.module_label(), "OP3");
        assert_eq!(HeOpKind::Rescale.module_label(), "OP4");
        assert_eq!(HeOpKind::ModSwitch.module_label(), "OP4");
        assert_eq!(HeOpKind::Relinearize.module_label(), "OP5");
        assert_eq!(HeOpKind::Rotate.module_label(), "OP5");
        assert_eq!(HeOpKind::Conjugate.module_label(), "OP5");
        assert_eq!(HeOpKind::Sign.module_label(), "OP6");
        assert_eq!(HeOpKind::CtMatmul.module_label(), "OP7");
    }

    #[test]
    fn all_is_exhaustive_and_ordered() {
        // ALL must list every kind exactly once, in declaration order
        // (the derived Ord), so kinds_used() stays deterministic.
        let mut sorted = HeOpKind::ALL;
        sorted.sort();
        assert_eq!(sorted, HeOpKind::ALL);
        for k in HeOpKind::ALL {
            assert_eq!(HeOpKind::ALL.iter().filter(|&&x| x == k).count(), 1, "{k}");
        }
    }

    #[test]
    fn registry_is_the_single_site() {
        // Compile-time: the registry length tracks the enum exactly — a
        // new variant without a registry row (or vice versa) fails to
        // build, so the macro invocation stays the one place ops
        // register.
        const _: [(); HeOpKind::COUNT] = [(); OP_REGISTRY.len()];
        for (i, spec) in OP_REGISTRY.iter().enumerate() {
            assert_eq!(spec.kind.index(), i, "registry row order matches enum");
            assert_eq!(spec.kind.to_string(), spec.name);
            assert!(!spec.span_label.is_empty());
            assert!(!spec.fault_class.is_empty());
            assert!(spec.module_label.starts_with("OP"));
        }
        // Names and metric labels are distinct per kind.
        for a in &OP_REGISTRY {
            assert_eq!(
                OP_REGISTRY.iter().filter(|b| b.name == a.name).count(),
                1,
                "duplicate registry name {}",
                a.name
            );
        }
    }

    #[test]
    fn new_workloads_have_their_own_fault_classes() {
        assert_eq!(HeOpKind::Sign.fault_class(), "sign-precision");
        assert_eq!(HeOpKind::CtMatmul.fault_class(), "matmul-block");
        // Distinct from every primitive class.
        for k in HeOpKind::ALL {
            if !matches!(k, HeOpKind::Sign | HeOpKind::CtMatmul) {
                assert_ne!(k.fault_class(), "sign-precision");
                assert_ne!(k.fault_class(), "matmul-block");
            }
        }
    }

    #[test]
    fn composite_costs_dominate_their_primitives() {
        let n = 8192;
        for l in 3..=7 {
            let sign = HeOpKind::Sign.modmuls(l, n);
            let matmul = HeOpKind::CtMatmul.modmuls(l, n);
            let ks = HeOpKind::Relinearize.modmuls(l, n);
            let cc = HeOpKind::CcMult.modmuls(l, n);
            assert!(
                sign > ks + cc,
                "sign stage embeds key switches and products"
            );
            assert!(
                matmul > sign,
                "a 64×64 matmul block outweighs one sign stage"
            );
        }
    }

    #[test]
    fn matmul_block_dim_tracks_ring_degree() {
        assert_eq!(matmul_block_dim(8192), 64);
        assert_eq!(matmul_block_dim(16384), 64);
        assert_eq!(matmul_block_dim(1024), 16);
        // One d²-slot tile always fits the ring: d² ≤ slots.
        for n in [1024usize, 2048, 4096, 8192, 16384] {
            let d = matmul_block_dim(n);
            assert!(d * d <= n / 2, "n={n} d={d}");
        }
    }

    #[test]
    fn bsgs_rotation_counts() {
        assert_eq!(bsgs_rotations(1), 0);
        // 16 diagonals: 4 baby + 4 giant, minus the two identities.
        assert_eq!(bsgs_rotations(16), 6);
        // BSGS beats the naive d−1 rotations for any sizable d.
        for d in [16usize, 64, 127] {
            assert!(bsgs_rotations(d) < d - 1, "d={d}");
        }
    }

    #[test]
    fn trace_counting() {
        let mut t = OpTrace::new();
        t.record_many(HeOpKind::PcMult, 7, 25);
        t.record_many(HeOpKind::CcAdd, 7, 25);
        t.record_many(HeOpKind::Rescale, 7, 25);
        t.record(HeOpKind::Rotate, 6);
        assert_eq!(t.hop_count(), 76);
        assert_eq!(t.key_switch_count(), 1);
        assert_eq!(t.count_of(HeOpKind::PcMult), 25);
        assert_eq!(
            t.kinds_used(),
            vec![
                HeOpKind::CcAdd,
                HeOpKind::PcMult,
                HeOpKind::Rescale,
                HeOpKind::Rotate
            ]
        );
    }

    #[test]
    fn extend_concatenates() {
        let mut a = OpTrace::new();
        a.record(HeOpKind::CcAdd, 3);
        let mut b = OpTrace::new();
        b.record(HeOpKind::Rotate, 2);
        a.extend_from(&b);
        assert_eq!(a.hop_count(), 2);
        assert_eq!(a.records()[1].kind, HeOpKind::Rotate);
        assert!(!a.is_empty());
    }

    #[test]
    fn collect_from_iterator() {
        let t: OpTrace = (1..=3)
            .map(|l| HeOpRecord {
                kind: HeOpKind::Rescale,
                level: l,
            })
            .collect();
        assert_eq!(t.hop_count(), 3);
        assert_eq!(t.records()[2].level, 3);
    }
}

//! End-to-end encrypted inference, twice over:
//!
//! 1. **Functionally**, at a reduced ring degree: a miniature
//!    Cnv/Act/Fc/Act/Fc network is actually encrypted, run through the
//!    real RNS-CKKS evaluator, decrypted and checked against the
//!    plaintext forward pass.
//! 2. **At paper scale**, analytically: the full FxHENN-MNIST network is
//!    lowered, a design is generated for both ALINX boards, and the
//!    speedup/energy headlines versus LoLa's published CPU numbers are
//!    recomputed.
//!
//! Run with: `cargo run --release --example mnist_inference`

use fxhenn::ckks::CkksParams;
use fxhenn::nn::model::{synthetic_input, toy_mnist_like};
use fxhenn::sim::{cosimulate, lola_reference, Dataset};
use fxhenn::{generate_accelerator, FpgaDevice};

fn main() {
    // Part 1: real homomorphic execution at toy scale.
    println!("== Part 1: functional HE inference (N = 1024, toy network) ==");
    let net = toy_mnist_like(7);
    let image = synthetic_input(&net, 3);
    let report = cosimulate(&net, &image, CkksParams::insecure_toy(7), 1234);
    println!("plaintext logits: {:?}", round3(&report.expected));
    println!("decrypted logits: {:?}", round3(&report.actual));
    println!("max slot error:   {:.5}", report.max_error);
    println!("argmax agreement: {}", report.argmax_agrees);
    println!(
        "trace check:      measured {} HOPs vs planned {} HOPs",
        report.measured_hops, report.planned_hops
    );
    assert!(report.argmax_agrees, "encrypted classification must agree");

    // Part 2: paper-scale design generation.
    println!();
    println!("== Part 2: FxHENN-MNIST accelerator on both boards ==");
    let network = fxhenn::nn::fxhenn_mnist(42);
    let params = CkksParams::fxhenn_mnist();
    let lola = lola_reference(Dataset::Mnist);

    for device in [FpgaDevice::acu9eg(), FpgaDevice::acu15eg()] {
        let r = generate_accelerator(&network, &params, &device).expect("feasible design");
        let m = r.measured(&device);
        println!(
            "{:<8}: {:.3} s | {:.2}x speedup vs LoLa ({} s) | {:.0}x energy efficiency",
            device.name(),
            r.latency_s(),
            m.speedup_over(&lola),
            lola.latency_s,
            m.energy_efficiency_over(&lola),
        );
    }
    println!();
    println!("paper reference: 0.24 s / 0.19 s; 9.17x / 11.58x; 806.96x / 1019.04x");
}

fn round3(v: &[f64]) -> Vec<f64> {
    v.iter().map(|x| (x * 1000.0).round() / 1000.0).collect()
}

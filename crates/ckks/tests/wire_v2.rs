//! Integration tests for the v2 aligned wire layout: round-trip
//! properties (including the misaligned-input copy fallback), v1 → v2
//! compatibility through the version-dispatching shims, and — the
//! property the zero-copy read path stands on — bit-identity between
//! owned and borrowed evaluation at three (N, L) points.

use fxhenn_ckks::serialize::{
    decode_ciphertext, decode_galois_keys, decode_plaintext, decode_public_key,
    decode_relin_key, encode_ciphertext, encode_plaintext,
};
use fxhenn_ckks::wire::{
    decode_ciphertext_v2, decode_galois_keys_v2, decode_plaintext_v2, decode_public_key_v2,
    decode_relin_key_v2, encode_ciphertext_v2, encode_galois_keys_v2, encode_plaintext_v2,
    encode_public_key_v2, encode_relin_key_v2,
};
use fxhenn_ckks::{
    copy_fallback_forced, Ciphertext, CkksContext, CkksParams, Encryptor, Evaluator,
    KeyGenerator,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ctx_at(n: usize, levels: usize) -> CkksContext {
    CkksContext::new(CkksParams::new(n, levels, 30, 45).expect("test points are valid"))
}

fn encrypt_at(ctx: &CkksContext, seed: u64, values: &[f64]) -> Ciphertext {
    let mut kg = KeyGenerator::new(ctx, StdRng::seed_from_u64(seed));
    let pk = kg.public_key();
    let mut enc = Encryptor::new(ctx, pk, StdRng::seed_from_u64(seed ^ 0xDEAD));
    enc.encrypt(values)
}

/// Decodes `bytes` from a deliberately misaligned copy: the slice starts
/// one byte past a word boundary, so the borrowed path is impossible and
/// the decoder must take the one-time copy fallback.
fn misalign(bytes: &[u8]) -> Vec<u8> {
    let mut shifted = Vec::with_capacity(bytes.len() + 1);
    shifted.push(0u8);
    shifted.extend_from_slice(bytes);
    shifted
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn v2_ciphertext_round_trips_aligned_and_misaligned(
        seed in 0u64..1_000,
        values in proptest::collection::vec(-1e3f64..1e3, 1..16),
    ) {
        let ctx = ctx_at(64, 2);
        let ct = encrypt_at(&ctx, seed, &values);
        let frame = encode_ciphertext_v2(&ct);

        // Aligned input: the view borrows the receive buffer.
        let view = decode_ciphertext_v2(frame.as_bytes()).expect("round-trip");
        if !copy_fallback_forced() {
            prop_assert!(view.is_zero_copy(), "aligned input must borrow");
        }
        prop_assert_eq!(view.to_owned_ciphertext(), ct.clone());

        // Misaligned input: the fallback copies once and still decodes
        // to the same ciphertext.
        let shifted = misalign(frame.as_bytes());
        let view = decode_ciphertext_v2(&shifted[1..]).expect("round-trip");
        prop_assert!(!view.is_zero_copy(), "misaligned input must copy");
        prop_assert_eq!(view.to_owned_ciphertext(), ct);
    }

    #[test]
    fn v2_plaintext_round_trips_aligned_and_misaligned(
        scale_exp in 8u32..40,
        values in proptest::collection::vec(-1e2f64..1e2, 1..16),
    ) {
        let ctx = ctx_at(64, 2);
        let ev = Evaluator::new(&ctx);
        let pt = ev
            .encode_at(&values, (scale_exp as f64).exp2(), 2)
            .expect("encodable");
        let frame = encode_plaintext_v2(&pt);

        let view = decode_plaintext_v2(frame.as_bytes()).expect("round-trip");
        if !copy_fallback_forced() {
            prop_assert!(view.is_zero_copy(), "aligned input must borrow");
        }
        prop_assert_eq!(view.to_owned_plaintext(), pt.clone());

        let shifted = misalign(frame.as_bytes());
        let view = decode_plaintext_v2(&shifted[1..]).expect("round-trip");
        prop_assert!(!view.is_zero_copy(), "misaligned input must copy");
        prop_assert_eq!(view.to_owned_plaintext(), pt);
    }
}

#[test]
fn v1_decoders_upgrade_v2_frames_transparently() {
    // The v1 entry points are version-dispatching shims: handed a v2
    // frame they decode through the borrowed view, handed a v1 buffer
    // they parse the legacy layout — both land on the same object.
    let ctx = ctx_at(256, 3);
    let ct = encrypt_at(&ctx, 31, &[1.0, -2.5, 0.125]);

    let via_v1 = decode_ciphertext(&encode_ciphertext(&ct)).expect("v1 round-trip");
    let via_v2 = decode_ciphertext(encode_ciphertext_v2(&ct).as_bytes()).expect("v2 dispatch");
    assert_eq!(via_v1, ct);
    assert_eq!(via_v2, ct);

    let ev = Evaluator::new(&ctx);
    let pt = ev.encode_for_mul(&[0.5, 0.25], 3).expect("encodable");
    let via_v1 = decode_plaintext(&encode_plaintext(&pt)).expect("v1 round-trip");
    let via_v2 = decode_plaintext(encode_plaintext_v2(&pt).as_bytes()).expect("v2 dispatch");
    assert_eq!(via_v1, pt);
    assert_eq!(via_v2, pt);
}

#[test]
fn key_frames_round_trip_bit_identically_through_both_versions() {
    // Keys have no PartialEq, so bit-identity is checked on the re-encoded
    // v2 frames — which cover every limb word of every digit.
    let ctx = ctx_at(64, 2);
    let mut kg = KeyGenerator::new(&ctx, StdRng::seed_from_u64(5));
    let pk = kg.public_key();
    let rk = kg.relin_key();
    let gks = kg.galois_keys(&[1, 2]);

    let pk_frame = encode_public_key_v2(&pk);
    let pk_view = decode_public_key_v2(pk_frame.as_bytes()).expect("pk view");
    assert_eq!(
        encode_public_key_v2(&pk_view.to_owned_public_key()).as_bytes(),
        pk_frame.as_bytes()
    );
    let through_shim = decode_public_key(pk_frame.as_bytes()).expect("pk shim");
    assert_eq!(
        encode_public_key_v2(&through_shim).as_bytes(),
        pk_frame.as_bytes()
    );

    let rk_frame = encode_relin_key_v2(&rk);
    let rk_view = decode_relin_key_v2(rk_frame.as_bytes()).expect("rk view");
    ctx.validate_relin_key_view(&rk_view).expect("honest key");
    assert_eq!(
        encode_relin_key_v2(&rk_view.to_owned_relin_key()).as_bytes(),
        rk_frame.as_bytes()
    );
    let through_shim = decode_relin_key(rk_frame.as_bytes()).expect("rk shim");
    assert_eq!(
        encode_relin_key_v2(&through_shim).as_bytes(),
        rk_frame.as_bytes()
    );

    let gk_frame = encode_galois_keys_v2(&gks);
    let gk_view = decode_galois_keys_v2(gk_frame.as_bytes()).expect("gk view");
    ctx.validate_galois_keys_view(&gk_view).expect("honest keys");
    assert_eq!(gk_view.len(), 2);
    assert_eq!(
        encode_galois_keys_v2(&gk_view.to_owned_galois_keys()).as_bytes(),
        gk_frame.as_bytes()
    );
    let through_shim = decode_galois_keys(gk_frame.as_bytes()).expect("gk shim");
    assert_eq!(
        encode_galois_keys_v2(&through_shim).as_bytes(),
        gk_frame.as_bytes()
    );
}

#[test]
fn owned_and_borrowed_evaluation_are_bit_identical_at_three_points() {
    // The zero-copy read path must be invisible to the arithmetic: for
    // every operation that accepts a borrowed view, the result must be
    // bit-identical (checked on the serialized frames) to the owned
    // path at all three (N, L) points.
    for &(n, levels) in &[(256usize, 2usize), (512, 3), (1024, 4)] {
        let ctx = ctx_at(n, levels);
        let mut kg = KeyGenerator::new(&ctx, StdRng::seed_from_u64(n as u64));
        let pk = kg.public_key();
        let mut enc = Encryptor::new(&ctx, pk, StdRng::seed_from_u64(n as u64 ^ 0xBEEF));
        let a = enc.encrypt(&[1.5, -0.75, 2.0]);
        let b = enc.encrypt(&[0.25, 3.0, -1.0]);
        let mut ev = Evaluator::new(&ctx);
        let pt = ev.encode_for_mul(&[0.5, 0.5, 0.5], levels).expect("encodable");

        let a_frame = encode_ciphertext_v2(&a);
        let b_frame = encode_ciphertext_v2(&b);
        let av = decode_ciphertext_v2(a_frame.as_bytes()).expect("view a");
        let bv = decode_ciphertext_v2(b_frame.as_bytes()).expect("view b");

        let owned = ev.add(&a, &b).expect("owned add");
        let borrowed = ev.add(&av, &bv).expect("borrowed add");
        assert_eq!(
            encode_ciphertext_v2(&owned).as_bytes(),
            encode_ciphertext_v2(&borrowed).as_bytes(),
            "add diverged at (N={n}, L={levels})"
        );

        let owned = ev.mul_plain(&a, &pt).expect("owned mul_plain");
        let borrowed = ev.mul_plain(&av, &pt).expect("borrowed mul_plain");
        assert_eq!(
            encode_ciphertext_v2(&owned).as_bytes(),
            encode_ciphertext_v2(&borrowed).as_bytes(),
            "mul_plain diverged at (N={n}, L={levels})"
        );

        let owned = ev.mul(&a, &b).expect("owned mul");
        let borrowed = ev.mul(&av, &bv).expect("borrowed mul");
        assert_eq!(
            encode_ciphertext_v2(&owned).as_bytes(),
            encode_ciphertext_v2(&borrowed).as_bytes(),
            "mul diverged at (N={n}, L={levels})"
        );

        let owned = ev.square(&a).expect("owned square");
        let borrowed = ev.square(&av).expect("borrowed square");
        assert_eq!(
            encode_ciphertext_v2(&owned).as_bytes(),
            encode_ciphertext_v2(&borrowed).as_bytes(),
            "square diverged at (N={n}, L={levels})"
        );
    }
}

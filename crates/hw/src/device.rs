//! FPGA device catalog.
//!
//! The paper evaluates on two ALINX boards: ACU9EG (Zynq UltraScale+
//! XCZU9EG: 2 520 DSP slices, 32.1 Mbit BRAM) and ACU15EG (XCZU15EG:
//! 3 528 DSP slices, 26.2 Mbit BRAM plus 31.5 Mbit URAM), both with a
//! 10 W thermal design power. Resource capacities here are design
//! constraints for the DSE (Sec. VI-B).

/// Bits in one BRAM36K block.
pub const BRAM36_BITS: usize = 36 * 1024;
/// Addressable words in one BRAM36K block (1K × 36 bit).
pub const BRAM36_DEPTH: usize = 1024;
/// Addressable words in one URAM block (4K × 72 bit).
pub const URAM_DEPTH: usize = 4096;

/// A target FPGA device: capacity of the resources the DSE provisions.
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaDevice {
    name: String,
    dsp_slices: usize,
    bram_blocks: usize,
    uram_blocks: usize,
    clock_mhz: f64,
    tdp_watts: f64,
}

impl FpgaDevice {
    /// Creates a custom device description, returning a
    /// [`crate::error::ModelError`] for impossible capacities.
    pub fn try_new(
        name: impl Into<String>,
        dsp_slices: usize,
        bram_blocks: usize,
        uram_blocks: usize,
        clock_mhz: f64,
        tdp_watts: f64,
    ) -> Result<Self, crate::error::ModelError> {
        use crate::error::ModelError;
        if dsp_slices == 0 {
            return Err(ModelError::NoDspSlices);
        }
        if bram_blocks == 0 {
            return Err(ModelError::NoBramBlocks);
        }
        if clock_mhz.is_nan() || clock_mhz <= 0.0 {
            return Err(ModelError::NonPositiveRate {
                what: "clock",
                value: clock_mhz,
            });
        }
        if tdp_watts.is_nan() || tdp_watts <= 0.0 {
            return Err(ModelError::NonPositiveRate {
                what: "TDP",
                value: tdp_watts,
            });
        }
        Ok(Self {
            name: name.into(),
            dsp_slices,
            bram_blocks,
            uram_blocks,
            clock_mhz,
            tdp_watts,
        })
    }

    /// Creates a custom device description.
    ///
    /// # Panics
    ///
    /// Panics if DSP or BRAM capacity is zero, or clock/TDP are not
    /// positive. [`Self::try_new`] returns these as errors instead.
    pub fn new(
        name: impl Into<String>,
        dsp_slices: usize,
        bram_blocks: usize,
        uram_blocks: usize,
        clock_mhz: f64,
        tdp_watts: f64,
    ) -> Self {
        Self::try_new(name, dsp_slices, bram_blocks, uram_blocks, clock_mhz, tdp_watts)
            .expect("device description")
    }

    /// ALINX ACU9EG: Zynq UltraScale+ XCZU9EG — 2 520 DSP slices,
    /// 912 BRAM36K blocks (32.1 Mbit), no URAM, 10 W TDP.
    pub fn acu9eg() -> Self {
        Self::new("ACU9EG", 2520, 912, 0, 250.0, 10.0)
    }

    /// ALINX ACU15EG: Zynq UltraScale+ XCZU15EG — 3 528 DSP slices,
    /// 744 BRAM36K blocks (26.2 Mbit) plus 112 URAM blocks (31.5 Mbit),
    /// 10 W TDP.
    pub fn acu15eg() -> Self {
        Self::new("ACU15EG", 3528, 744, 112, 250.0, 10.0)
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// DSP slice capacity.
    #[inline]
    pub fn dsp_slices(&self) -> usize {
        self.dsp_slices
    }

    /// BRAM36K block capacity.
    #[inline]
    pub fn bram_blocks(&self) -> usize {
        self.bram_blocks
    }

    /// URAM block capacity.
    #[inline]
    pub fn uram_blocks(&self) -> usize {
        self.uram_blocks
    }

    /// Accelerator clock in MHz (HLS target).
    #[inline]
    pub fn clock_mhz(&self) -> f64 {
        self.clock_mhz
    }

    /// Thermal design power in watts (for energy-efficiency comparisons).
    #[inline]
    pub fn tdp_watts(&self) -> f64 {
        self.tdp_watts
    }

    /// Seconds per clock cycle.
    #[inline]
    pub fn cycle_seconds(&self) -> f64 {
        1.0 / (self.clock_mhz * 1e6)
    }

    /// Total on-chip BRAM capacity in Mbit (mebibits, as device
    /// datasheets and the paper count them: 912 × 36 Kib = 32.1 Mbit).
    pub fn bram_mbit(&self) -> f64 {
        (self.bram_blocks * BRAM36_BITS) as f64 / (1024.0 * 1024.0)
    }

    /// Equivalent BRAM36K capacity of the URAM pool, given the words each
    /// buffer bank holds (`num` of Sec. VI-A): URAM and BRAM have 4K and
    /// 1K addresses, so a URAM replaces between 1 and 4 BRAMs depending
    /// on how deep the partitioned banks are.
    pub fn uram_as_bram_blocks(&self, bank_words: usize) -> usize {
        let ratio = if bank_words >= 4 * BRAM36_DEPTH {
            4.0
        } else if bank_words <= BRAM36_DEPTH {
            1.0
        } else {
            bank_words as f64 / BRAM36_DEPTH as f64
        };
        (self.uram_blocks as f64 * ratio).floor() as usize
    }

    /// Total BRAM-equivalent block budget, with URAM converted at the
    /// given bank depth.
    pub fn total_bram_equivalent(&self, bank_words: usize) -> usize {
        self.bram_blocks + self.uram_as_bram_blocks(bank_words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acu9eg_matches_paper_specs() {
        let d = FpgaDevice::acu9eg();
        assert_eq!(d.dsp_slices(), 2520);
        assert_eq!(d.bram_blocks(), 912);
        assert_eq!(d.uram_blocks(), 0);
        // 912 * 36Kib = 32.1 Mbit as the paper states
        assert!((d.bram_mbit() - 32.1).abs() < 0.6, "{}", d.bram_mbit());
        assert_eq!(d.tdp_watts(), 10.0);
    }

    #[test]
    fn acu15eg_matches_paper_specs() {
        let d = FpgaDevice::acu15eg();
        assert_eq!(d.dsp_slices(), 3528);
        // 744 * 36Kb = 26.2 Mbit
        assert!((d.bram_mbit() - 26.2).abs() < 0.6, "{}", d.bram_mbit());
        // 112 URAM * 288Kb = 31.5 Mbit as the paper states
        let uram_mbit = (d.uram_blocks() * 288 * 1024) as f64 / (1024.0 * 1024.0);
        assert!((uram_mbit - 31.5).abs() < 0.8, "{uram_mbit}");
    }

    #[test]
    fn uram_conversion_follows_section6a() {
        let d = FpgaDevice::acu15eg();
        // Deep banks: ratio 4.
        assert_eq!(d.uram_as_bram_blocks(8192), 112 * 4);
        // Shallow banks: ratio 1.
        assert_eq!(d.uram_as_bram_blocks(512), 112);
        assert_eq!(d.uram_as_bram_blocks(1024), 112);
        // In between: num / 1K.
        assert_eq!(d.uram_as_bram_blocks(2048), 224);
        // ACU9EG has no URAM to convert.
        assert_eq!(FpgaDevice::acu9eg().uram_as_bram_blocks(8192), 0);
    }

    #[test]
    fn total_budget_combines_bram_and_uram() {
        let d = FpgaDevice::acu15eg();
        assert_eq!(d.total_bram_equivalent(8192), 744 + 448);
        assert!(
            d.total_bram_equivalent(8192) > FpgaDevice::acu9eg().total_bram_equivalent(8192),
            "ACU15EG has the larger effective memory"
        );
    }

    #[test]
    fn cycle_time_from_clock() {
        let d = FpgaDevice::acu9eg();
        assert!((d.cycle_seconds() - 4e-9).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "needs DSP")]
    fn zero_dsp_rejected() {
        FpgaDevice::new("bad", 0, 100, 0, 200.0, 10.0);
    }
}

//! Minimal unsigned big-integer support for CRT reconstruction.
//!
//! Decoding a CKKS plaintext requires mapping an RNS residue vector back to
//! a centered integer modulo `Q = ∏ q_i`, where `Q` can be several hundred
//! bits (the paper uses 210- and 252-bit `Q`). Rather than pull in a bignum
//! dependency, this module implements the handful of operations the CRT
//! needs: addition, subtraction, multiplication by a word, division by a
//! word, comparison and conversion to `f64`.

use std::cmp::Ordering;

/// Arbitrary-precision unsigned integer, little-endian 64-bit limbs.
///
/// The representation is normalized: no trailing zero limbs, and zero is
/// the empty limb vector.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        Self { limbs: Vec::new() }
    }

    /// Creates a big integer from a single word.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            Self { limbs: vec![v] }
        }
    }

    /// Returns true if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of significant bits.
    pub fn bits(&self) -> u32 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() as u32 - 1) * 64 + (64 - top.leading_zeros()),
        }
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Adds `other` into `self`.
    pub fn add_assign(&mut self, other: &BigUint) {
        let mut carry = 0u64;
        let n = self.limbs.len().max(other.limbs.len());
        self.limbs.resize(n, 0);
        for i in 0..n {
            let o = other.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = self.limbs[i].overflowing_add(o);
            let (s2, c2) = s1.overflowing_add(carry);
            self.limbs[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            self.limbs.push(carry);
        }
    }

    /// Subtracts `other` from `self`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self` (the result would be negative).
    pub fn sub_assign(&mut self, other: &BigUint) {
        assert!(
            self.cmp_big(other) != Ordering::Less,
            "big integer subtraction would underflow"
        );
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let o = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(o);
            let (d2, b2) = d1.overflowing_sub(borrow);
            self.limbs[i] = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        self.normalize();
    }

    /// Multiplies `self` by a word in place.
    pub fn mul_u64_assign(&mut self, m: u64) {
        if m == 0 {
            self.limbs.clear();
            return;
        }
        let mut carry = 0u64;
        for limb in &mut self.limbs {
            let prod = *limb as u128 * m as u128 + carry as u128;
            *limb = prod as u64;
            carry = (prod >> 64) as u64;
        }
        if carry > 0 {
            self.limbs.push(carry);
        }
    }

    /// Returns `self * m` without modifying `self`.
    pub fn mul_u64(&self, m: u64) -> BigUint {
        let mut r = self.clone();
        r.mul_u64_assign(m);
        r
    }

    /// Divides `self` by a word, returning `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn div_rem_u64(&self, d: u64) -> (BigUint, u64) {
        assert!(d != 0, "division by zero");
        let mut q = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            q[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        let mut quo = BigUint { limbs: q };
        quo.normalize();
        (quo, rem as u64)
    }

    /// Computes `self mod d` for a word divisor.
    pub fn rem_u64(&self, d: u64) -> u64 {
        self.div_rem_u64(d).1
    }

    /// Compares two big integers.
    pub fn cmp_big(&self, other: &BigUint) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for i in (0..self.limbs.len()).rev() {
                    match self.limbs[i].cmp(&other.limbs[i]) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }

    /// Converts to `f64`, with rounding appropriate for values whose
    /// magnitude fits in the `f64` exponent range.
    pub fn to_f64(&self) -> f64 {
        let mut acc = 0f64;
        for &limb in self.limbs.iter().rev() {
            acc = acc * 1.8446744073709552e19 + limb as f64; // 2^64
        }
        acc
    }

    /// Product of a list of words, as a big integer.
    pub fn product_of(words: &[u64]) -> BigUint {
        let mut acc = BigUint::from_u64(1);
        for &w in words {
            acc.mul_u64_assign(w);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_properties() {
        let z = BigUint::zero();
        assert!(z.is_zero());
        assert_eq!(z.bits(), 0);
        assert_eq!(z.to_f64(), 0.0);
        assert_eq!(BigUint::from_u64(0), z);
    }

    #[test]
    fn add_with_carry_chain() {
        let mut a = BigUint::from_u64(u64::MAX);
        a.add_assign(&BigUint::from_u64(1));
        assert_eq!(a.limbs, vec![0, 1]);
        assert_eq!(a.bits(), 65);
    }

    #[test]
    fn sub_restores_after_add() {
        let mut a = BigUint::from_u64(12345);
        a.mul_u64_assign(u64::MAX);
        let b = a.clone();
        a.add_assign(&BigUint::from_u64(999));
        a.sub_assign(&BigUint::from_u64(999));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let mut a = BigUint::from_u64(1);
        a.sub_assign(&BigUint::from_u64(2));
    }

    #[test]
    fn mul_div_roundtrip() {
        let primes = [1_073_741_789u64, 1_073_741_783, 4_611_686_018_427_387_847];
        let q = BigUint::product_of(&primes);
        for &p in &primes {
            let (quo, rem) = q.div_rem_u64(p);
            assert_eq!(rem, 0, "product divisible by each factor");
            assert_eq!(quo.mul_u64(p), q);
        }
    }

    #[test]
    fn rem_matches_crt_residues() {
        let primes = [97u64, 101, 103];
        // v = 50 mod 97, 50 mod 101, 50 mod 103 => v = 50
        let v = BigUint::from_u64(50);
        for &p in &primes {
            assert_eq!(v.rem_u64(p), 50 % p);
        }
        // A larger assembled value.
        let big = BigUint::product_of(&[u64::MAX, u64::MAX - 1]);
        assert_eq!(
            big.rem_u64(97),
            {
                // (a*b) mod 97 via u128 staging
                let a = (u64::MAX % 97) as u128;
                let b = ((u64::MAX - 1) % 97) as u128;
                ((a * b) % 97) as u64
            },
            "remainder distributes over product"
        );
    }

    #[test]
    fn comparison_orders_by_magnitude() {
        let small = BigUint::from_u64(5);
        let mid = BigUint::from_u64(u64::MAX);
        let big = mid.mul_u64(2);
        assert_eq!(small.cmp_big(&mid), Ordering::Less);
        assert_eq!(big.cmp_big(&mid), Ordering::Greater);
        assert_eq!(mid.cmp_big(&mid.clone()), Ordering::Equal);
    }

    #[test]
    fn to_f64_approximates_large_values() {
        let v = BigUint::product_of(&[1u64 << 40, 1 << 40, 1 << 40]);
        let f = v.to_f64();
        let expected = (2f64).powi(120);
        assert!((f - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn bits_counts_correctly() {
        assert_eq!(BigUint::from_u64(1).bits(), 1);
        assert_eq!(BigUint::from_u64(0b1000).bits(), 4);
        let two_64 = {
            let mut a = BigUint::from_u64(u64::MAX);
            a.add_assign(&BigUint::from_u64(1));
            a
        };
        assert_eq!(two_64.bits(), 65);
    }
}

//! Analytic noise tracking for RNS-CKKS.
//!
//! CKKS is approximate: every operation adds or amplifies noise, and the
//! message survives only while `noise ≪ scale`. This module implements
//! the standard canonical-embedding noise heuristics so users can budget
//! a computation *before* running it — the same bookkeeping that justifies
//! the paper's choice of `L = 7` for multiplication-depth-5 networks.
//!
//! Estimates track the standard deviation of the coefficient-domain
//! noise; the *slot* error after decoding is roughly
//! `noise_std · sqrt(N) / scale`.

use crate::context::CkksContext;

/// Standard deviation of the error distribution (HE standard).
const SIGMA: f64 = 3.2;

/// An analytic estimate of a ciphertext's noise and scale state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseEstimate {
    /// Standard deviation of the coefficient-domain noise.
    pub noise_std: f64,
    /// Current ciphertext scale Δ.
    pub scale: f64,
    /// Current level (active RNS primes).
    pub level: usize,
}

impl NoiseEstimate {
    /// Noise of a fresh public-key encryption at the top level.
    ///
    /// Fresh noise is `e0 + u·e + e1·s` with ternary `u, s`: standard
    /// deviation ≈ `σ · sqrt(4N/3 + 1)`.
    pub fn fresh(ctx: &CkksContext) -> Self {
        let n = ctx.degree() as f64;
        Self {
            noise_std: SIGMA * (4.0 * n / 3.0 + 1.0).sqrt(),
            scale: ctx.params().scale(),
            level: ctx.max_level(),
        }
    }

    /// Expected absolute slot error after decryption and decoding.
    pub fn slot_error(&self, ctx: &CkksContext) -> f64 {
        self.noise_std * (ctx.degree() as f64).sqrt() / self.scale
    }

    /// Remaining "noise budget" in bits: `log2(scale / noise_std)`.
    /// Decryption is meaningful while this stays comfortably positive.
    pub fn budget_bits(&self) -> f64 {
        (self.scale / self.noise_std).log2()
    }

    /// Noise after a ciphertext + ciphertext addition.
    pub fn after_add(&self, other: &NoiseEstimate) -> Self {
        assert_eq!(self.level, other.level, "addition needs matching levels");
        Self {
            noise_std: (self.noise_std.powi(2) + other.noise_std.powi(2)).sqrt(),
            scale: self.scale,
            level: self.level,
        }
    }

    /// Noise after a plaintext multiplication, where the plaintext
    /// encodes values bounded by `value_bound` at scale `pt_scale`.
    ///
    /// The old noise is amplified by the plaintext magnitude (≈
    /// `pt_scale · value_bound`), plus the encoding-rounding error times
    /// the message magnitude (absorbed into the same bound).
    pub fn after_mul_plain(&self, pt_scale: f64, value_bound: f64) -> Self {
        Self {
            noise_std: self.noise_std * pt_scale * value_bound.max(1.0),
            scale: self.scale * pt_scale,
            level: self.level,
        }
    }

    /// Noise after a ciphertext × ciphertext multiplication, where the
    /// two messages are bounded by `bound_a`, `bound_b` (pre-scaling).
    pub fn after_mul(
        &self,
        other: &NoiseEstimate,
        bound_self: f64,
        bound_other: f64,
    ) -> Self {
        assert_eq!(self.level, other.level, "CCmult needs matching levels");
        // n_out ≈ n1·|m2|·Δ2 + n2·|m1|·Δ1 + n1·n2
        let cross1 = self.noise_std * bound_other.max(1.0) * other.scale;
        let cross2 = other.noise_std * bound_self.max(1.0) * self.scale;
        let quad = self.noise_std * other.noise_std;
        Self {
            noise_std: (cross1.powi(2) + cross2.powi(2) + quad.powi(2)).sqrt(),
            scale: self.scale * other.scale,
            level: self.level,
        }
    }

    /// Noise after rescaling by the level's last prime.
    ///
    /// The old noise divides by `q`; rounding adds ≈
    /// `sqrt(N/12 · (1 + 2N/3))`-ish, approximated by the dominant
    /// `sqrt(N/12) · sqrt(1 + N·2/3)` term from rounding against the
    /// ternary secret.
    pub fn after_rescale(&self, ctx: &CkksContext) -> Self {
        assert!(self.level >= 2, "cannot rescale below level 1");
        let q = ctx.dropped_prime_at(self.level) as f64;
        let n = ctx.degree() as f64;
        let rounding = (n / 12.0).sqrt() * (1.0 + 2.0 * n / 3.0).sqrt();
        Self {
            noise_std: ((self.noise_std / q).powi(2) + rounding.powi(2)).sqrt(),
            scale: self.scale / q,
            level: self.level - 1,
        }
    }

    /// Noise added by one key switch (relinearization or rotation).
    ///
    /// With per-prime digits and special prime `p`, the switch
    /// contributes ≈ `sqrt(L) · q_max · sqrt(N/12) · σ / p` plus the
    /// mod-down rounding.
    pub fn after_key_switch(&self, ctx: &CkksContext) -> Self {
        let n = ctx.degree() as f64;
        let l = self.level as f64;
        let q_max = ctx.moduli_at(self.level)
            .iter()
            .copied()
            .max()
            .expect("non-empty") as f64;
        // Digit magnitude: group_size primes per digit; the special
        // product P suppresses it after mod-down.
        let group = ctx.params().digit_group_size() as f64;
        let digit_mag = q_max.powf(group);
        let p = ctx.special_product_f64();
        let switch = (l).sqrt() * digit_mag * (n / 12.0).sqrt() * SIGMA / p;
        let rounding = (n / 12.0).sqrt() * (1.0 + 2.0 * n / 3.0).sqrt();
        Self {
            noise_std: (self.noise_std.powi(2) + switch.powi(2) + rounding.powi(2)).sqrt(),
            scale: self.scale,
            level: self.level,
        }
    }

    /// Noise after a slot rotation (automorphism is an isometry; only the
    /// key switch contributes).
    pub fn after_rotate(&self, ctx: &CkksContext) -> Self {
        self.after_key_switch(ctx)
    }
}

/// Plans the noise of a square-activation step (CCmult + relinearize +
/// rescale) on a message bounded by `bound`.
pub fn square_step(est: &NoiseEstimate, bound: f64, ctx: &CkksContext) -> NoiseEstimate {
    est.after_mul(est, bound, bound)
        .after_key_switch(ctx)
        .after_rescale(ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encrypt::{Decryptor, Encryptor};
    use crate::eval::Evaluator;
    use crate::keys::KeyGenerator;
    use crate::params::CkksParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> CkksContext {
        CkksContext::new(CkksParams::insecure_toy(4))
    }

    /// Measures the actual coefficient noise of a ciphertext holding
    /// (approximately) known slot values.
    fn measured_noise(
        ctx: &CkksContext,
        dec: &Decryptor<'_>,
        ct: &crate::cipher::Ciphertext,
        expected_slots: &[f64],
    ) -> f64 {
        let got = dec.decrypt(ct);
        let err_rms = expected_slots
            .iter()
            .zip(&got)
            .map(|(&e, &g)| (e - g).powi(2))
            .sum::<f64>()
            .sqrt()
            / (expected_slots.len() as f64).sqrt();
        // slot error ~ noise_std * sqrt(N) / scale  => invert
        err_rms * ct.scale() / (ctx.degree() as f64).sqrt()
    }

    #[test]
    fn fresh_estimate_matches_measurement_within_an_order() {
        let ctx = setup();
        let mut kg = KeyGenerator::new(&ctx, StdRng::seed_from_u64(1));
        let pk = kg.public_key();
        let sk = kg.secret_key();
        let mut enc = Encryptor::new(&ctx, pk, StdRng::seed_from_u64(2));
        let dec = Decryptor::new(&ctx, sk);

        let slots = ctx.degree() / 2;
        let values: Vec<f64> = (0..slots).map(|i| ((i % 7) as f64) - 3.0).collect();
        let ct = enc.encrypt(&values);
        let est = NoiseEstimate::fresh(&ctx);
        let measured = measured_noise(&ctx, &dec, &ct, &values);
        let ratio = est.noise_std / measured.max(1e-9);
        assert!(
            (0.05..=50.0).contains(&ratio),
            "estimate {:.1} vs measured {:.1} (ratio {ratio:.2})",
            est.noise_std,
            measured
        );
    }

    #[test]
    fn addition_grows_noise_sublinearly() {
        let ctx = setup();
        let fresh = NoiseEstimate::fresh(&ctx);
        let sum = fresh.after_add(&fresh);
        assert!(sum.noise_std > fresh.noise_std);
        assert!(sum.noise_std < 2.0 * fresh.noise_std, "RSS, not sum");
        assert_eq!(sum.level, fresh.level);
    }

    #[test]
    fn rescale_divides_noise_and_scale() {
        let ctx = setup();
        let fresh = NoiseEstimate::fresh(&ctx);
        let big = fresh.after_mul_plain(ctx.dropped_prime_at(fresh.level) as f64, 1.0);
        let rescaled = big.after_rescale(&ctx);
        assert_eq!(rescaled.level, fresh.level - 1);
        assert!(rescaled.noise_std < big.noise_std / 100.0);
        assert!((rescaled.scale - fresh.scale).abs() / fresh.scale < 1e-9);
    }

    #[test]
    fn budget_survives_depth_three_squares() {
        // L = 4 supports 3 squarings; the budget should stay positive.
        let ctx = setup();
        let mut est = NoiseEstimate::fresh(&ctx);
        let mut bound = 1.5f64;
        for depth in 0..3 {
            est = square_step(&est, bound, &ctx);
            bound = bound * bound;
            assert!(
                est.budget_bits() > 2.0,
                "budget exhausted at depth {depth}: {:.1} bits",
                est.budget_bits()
            );
        }
        assert_eq!(est.level, 1);
    }

    #[test]
    fn keyswitch_noise_is_small_relative_to_scale() {
        // The special prime suppresses key-switch noise far below Δ.
        let ctx = setup();
        let fresh = NoiseEstimate::fresh(&ctx);
        let rotated = fresh.after_rotate(&ctx);
        assert!(rotated.noise_std < fresh.scale / 100.0);
        assert!(rotated.noise_std >= fresh.noise_std, "noise cannot shrink");
    }

    #[test]
    fn predicted_square_noise_tracks_measured() {
        let ctx = setup();
        let mut kg = KeyGenerator::new(&ctx, StdRng::seed_from_u64(3));
        let pk = kg.public_key();
        let sk = kg.secret_key();
        let rk = kg.relin_key();
        let mut enc = Encryptor::new(&ctx, pk, StdRng::seed_from_u64(4));
        let dec = Decryptor::new(&ctx, sk);
        let mut ev = Evaluator::new(&ctx);

        let slots = ctx.degree() / 2;
        let values: Vec<f64> = (0..slots).map(|i| ((i % 5) as f64) / 2.0 - 1.0).collect();
        let expected: Vec<f64> = values.iter().map(|&v| v * v).collect();
        let ct = enc.encrypt(&values);
        let sq = ev.square(&ct).unwrap();
        let lin = ev.relinearize(&sq, &rk).unwrap();
        let out = ev.rescale(&lin).unwrap();

        let est = square_step(&NoiseEstimate::fresh(&ctx), 1.0, &ctx);
        let measured = measured_noise(&ctx, &dec, &out, &expected);
        // Heuristic bound: prediction within two orders of magnitude and
        // not an underestimate by more than 10x.
        let ratio = est.noise_std / measured.max(1e-9);
        assert!(
            (0.1..=500.0).contains(&ratio),
            "estimate {:.2} vs measured {:.2}",
            est.noise_std,
            measured
        );
    }

    #[test]
    #[should_panic(expected = "matching levels")]
    fn add_estimate_rejects_level_mismatch() {
        let ctx = setup();
        let a = NoiseEstimate::fresh(&ctx);
        let mut b = a;
        b.level -= 1;
        a.after_add(&b);
    }
}

//! # fxhenn-nn
//!
//! CNN models, LoLa-style ciphertext packing and the HE-CNN lowering for
//! the FxHENN reproduction: plaintext reference layers, the
//! FxHENN-MNIST / FxHENN-CIFAR10 benchmark networks, slot layouts and
//! packing builders, the analytic lowering that turns a network into a
//! per-layer HE operation program, and a functional executor that runs
//! the same program through `fxhenn-ckks` for end-to-end verification.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod builder;
pub mod error;
pub mod executor;
pub mod layers;
pub mod lowering;
pub mod model;
pub mod noise_plan;
pub mod packing;
pub mod stats;
pub mod telemetry;
pub mod tensor;
pub mod train;

pub use builder::{BuildError, NetworkBuilder};
pub use error::{ExecError, LowerError};
pub use layers::{AvgPool2d, ChannelScale, Conv2d, Dense, Layer, SignRelu, Square};
pub use lowering::{
    lower_network, plan_dense, try_lower_network, DensePlan, HeCnnProgram, HeLayerClass,
    HeLayerPlan, Layout,
};
pub use model::{fxhenn_cifar10, fxhenn_mnist, fxhenn_mnist_pooled, synthetic_input, toy_cryptonets_like, toy_mnist_like, Network};
pub use noise_plan::{
    analyze_noise, LayerNoiseProfile, NoiseInfeasible, NoiseTrajectory, DEFAULT_PLAN_FLOOR_BITS,
};
pub use packing::CtLayout;
pub use telemetry::{register_nn_metrics, LayerSpanLog};
pub use train::{accuracy, train, SyntheticTask, TrainConfig};
pub use tensor::Tensor;

//! # fxhenn-ckks
//!
//! A from-scratch implementation of the RNS-CKKS fully homomorphic
//! encryption scheme (Cheon–Kim–Kim–Song with the full-RNS variant of
//! Cheon–Han–Kim–Kim–Song), providing every HE operation the FxHENN
//! accelerator implements in hardware: CCadd/PCadd (OP1), PCmult (OP2),
//! CCmult (OP3), Rescale (OP4) and KeySwitch — Relinearize and Rotate —
//! (OP5).
//!
//! Key switching uses the hybrid construction with per-prime digits and a
//! single special prime, so one key serves ciphertexts at every level —
//! the property behind the paper's inter-layer KeySwitch module reuse.
//!
//! ## Example
//!
//! ```
//! use fxhenn_ckks::{CkksContext, CkksParams, Decryptor, Encryptor, Evaluator, KeyGenerator};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let ctx = CkksContext::new(CkksParams::insecure_toy(3));
//! let mut kg = KeyGenerator::new(&ctx, StdRng::seed_from_u64(7));
//! let pk = kg.public_key();
//! let sk = kg.secret_key();
//!
//! let mut enc = Encryptor::new(&ctx, pk, StdRng::seed_from_u64(8));
//! let dec = Decryptor::new(&ctx, sk);
//! let mut ev = Evaluator::new(&ctx);
//!
//! let ct = enc.encrypt(&[1.0, 2.0, 3.0]);
//! let doubled = ev.add(&ct, &ct).expect("matching scales");
//! let out = dec.decrypt(&doubled);
//! assert!((out[1] - 4.0).abs() < 1e-2);
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod canary;
pub mod cipher;
pub mod error;
pub mod context;
pub mod encoding;
pub mod encrypt;
pub mod eval;
pub mod keys;
pub mod linalg;
pub mod matmul;
pub mod noise;
pub mod params;
pub mod security;
pub mod serialize;
pub mod sgn;
pub mod telemetry;
pub mod trace;
pub mod wire;

pub use canary::{Canary, DEFAULT_CANARY_MARGIN, DEFAULT_CANARY_SLOTS};
pub use cipher::{Ciphertext, Plaintext};
pub use context::CkksContext;
pub use encoding::CkksEncoder;
pub use encrypt::{Decryptor, Encryptor, SymmetricEncryptor};
pub use error::EvalError;
pub use eval::{EvalOps, Evaluator};
pub use matmul::{
    ct_matmul, decode_block, encode_block, matmul_reference, required_rotations, MATMUL_DEPTH,
};
pub use keys::{GaloisKeys, KeyGenerator, KeySwitchKey, PublicKey, RelinKey, SecretKey};
pub use noise::{NoiseEstimate, NoiseModel};
pub use params::{CkksParams, ParamsError};
pub use serialize::{
    content_checksum, decode_galois_keys_checksummed, decode_public_key_checksummed,
    decode_relin_key_checksummed, encode_galois_keys_checksummed,
    encode_public_key_checksummed, encode_relin_key_checksummed, open_checksummed,
    seal_checksummed, DecodeError,
};
pub use security::{estimate_security, SecurityLevel};
pub use telemetry::{
    register_he_metrics, register_noise_metrics, register_wire_metrics, OpSpanLog,
};
pub use sgn::{
    align_scale, argmax_depth, encrypted_argmax, max_pool2, max_pool2_depth, relu_approx,
    relu_depth, sign, sign_reference, sign_reference_with_bound, sign_with_bound, ScoredClass,
    SignPreset,
};
pub use trace::{
    bsgs_rotations, matmul_block_dim, ntt_mults, HeOpKind, HeOpRecord, OpSpec, OpTrace,
    OP_REGISTRY,
};
pub use wire::{
    copy_fallback_forced, decode_ciphertext_v2, decode_galois_keys_v2, decode_plaintext_v2,
    decode_public_key_v2, decode_relin_key_v2, encode_ciphertext_v2, encode_galois_keys_v2,
    encode_plaintext_v2, encode_public_key_v2, encode_relin_key_v2, seal_checksummed_v2,
    AlignedBytes, CiphertextView, GaloisKeysView, KskRef, LimbsRef, MappedFrame, PlaintextView,
    PublicKeyView, RelinKeyView,
};

//! Trace-driven cycle simulation of a generated accelerator.
//!
//! Where the analytic layer model (Eqs. 1–3) reasons about the
//! steady-state bottleneck, the simulator *executes* the layer's HE
//! operation trace against module stations: every operation occupies one
//! instance of its class's module for its pipeline interval, instances
//! are claimed earliest-free, and the layer makespan includes explicit
//! pipeline fill (the first operation's full latency) and drain. BRAM
//! starvation is modeled with the harmonic stall factor calibrated on
//! Table III.

use fxhenn_dse::baseline::stall_factor;
use fxhenn_dse::design::{layer_governing_config, DesignPoint};
use fxhenn_hw::buffers::layer_bram_blocks;
use fxhenn_hw::calibration::LAYER_PIPELINE_OVERHEAD;
use fxhenn_hw::layer::LayerShape;
use fxhenn_hw::modules::{HeOpModule, OpClass};
use fxhenn_hw::FpgaDevice;
use fxhenn_math::budget::{self, BudgetStop, Progress};
use fxhenn_nn::{HeCnnProgram, HeLayerPlan};

/// Trace records processed between ambient-budget checks inside one
/// layer's station simulation. Station claims are nanosecond-scale, so
/// this bounds the post-deadline overrun without measurable overhead —
/// except under an injected station stall, where the per-record sleep
/// dominates and the check still fires within [`STALL_CHECK_INTERVAL`]
/// stalled records.
const STALL_CHECK_INTERVAL: u64 = 64;

/// Simulation result for one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSim {
    /// Layer name.
    pub name: String,
    /// Makespan in cycles (before stalls).
    pub cycles: u64,
    /// Stall multiplier from BRAM starvation (1.0 when fully buffered).
    pub stall: f64,
    /// Wall-clock seconds including stalls.
    pub seconds: f64,
    /// BRAM blocks the layer wants resident.
    pub bram_demand: usize,
    /// BRAM blocks it was granted.
    pub bram_granted: usize,
}

/// Simulation result for a full inference.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Per-layer results in execution order.
    pub layers: Vec<LayerSim>,
    /// End-to-end latency in seconds.
    pub total_seconds: f64,
    /// Energy at the device TDP, in joules.
    pub energy_joules: f64,
}

impl SimReport {
    /// The slowest layer, or `None` for an empty report. `total_cmp`
    /// makes the choice total even if a latency were NaN.
    pub fn try_bottleneck(&self) -> Option<&LayerSim> {
        self.layers
            .iter()
            .max_by(|a, b| a.seconds.total_cmp(&b.seconds))
    }

    /// The slowest layer.
    ///
    /// # Panics
    ///
    /// Panics on an empty report; [`Self::try_bottleneck`] returns
    /// `None` instead.
    pub fn bottleneck(&self) -> &LayerSim {
        self.try_bottleneck().expect("at least one layer")
    }
}

/// Event-driven makespan of one layer's trace on the design's module
/// stations, in cycles (before the calibrated overhead factor).
///
/// Checks the ambient execution budget every [`STALL_CHECK_INTERVAL`]
/// records and applies any injected [`crate::faults::with_station_stall`]
/// delay per station claim, so a never-completing station surfaces as a
/// typed [`BudgetStop`] instead of a wedged simulation.
fn layer_makespan_cycles(
    plan: &HeLayerPlan,
    point: &DesignPoint,
    degree: usize,
) -> Result<u64, BudgetStop> {
    // Earliest-free time per (class, instance).
    let mut stations: std::collections::BTreeMap<OpClass, Vec<u64>> =
        std::collections::BTreeMap::new();
    let mut finish = 0u64;
    let total_records = plan.trace.records().len() as u64;
    let stall = crate::faults::station_stall();
    for (ri, rec) in plan.trace.records().iter().enumerate() {
        if (ri as u64).is_multiple_of(STALL_CHECK_INTERVAL) || stall.is_some() {
            budget::check("sim-station", Progress::of(ri as u64, total_records))?;
        }
        if let Some(delay) = stall {
            std::thread::sleep(delay);
        }
        let class = OpClass::from(rec.kind);
        let cfg = point.modules.get(class);
        let module = HeOpModule::new(class, cfg);
        let pi = module.pipeline_interval_cycles(rec.level, degree);
        let occupancy = if class == OpClass::KeySwitch {
            rec.level as u64 * pi
        } else {
            pi
        };
        let insts = stations
            .entry(class)
            .or_insert_with(|| vec![0u64; cfg.p_inter.max(1)]);
        // earliest-free instance
        // invariant: the station vector above is never empty.
        let (idx, &free_at) = insts
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .expect("at least one module instance");
        let end = free_at + occupancy;
        insts[idx] = end;
        finish = finish.max(end);
    }
    // Pipeline drain: the last operation's results still flush through
    // the downstream stages (approximately one standalone op latency of
    // the slowest class used).
    let drain = plan
        .trace
        .kinds_used()
        .into_iter()
        .map(|k| {
            let class = OpClass::from(k);
            HeOpModule::new(class, point.modules.get(class))
                .op_latency_cycles(plan.level_in, degree)
        })
        .max()
        .unwrap_or(0);
    Ok(finish + drain)
}

/// Simulates a full inference of `prog` on the design, with each layer
/// granted `bram_grants[i]` blocks (pass the layer demands to simulate a
/// fully buffered FxHENN design). Returns a typed error when the grant
/// vector does not line up with the program or the program is empty.
pub fn try_simulate_with_grants(
    prog: &HeCnnProgram,
    point: &DesignPoint,
    device: &FpgaDevice,
    w_bits: u32,
    bram_grants: &[usize],
) -> Result<SimReport, crate::error::SimError> {
    if prog.layers.is_empty() {
        return Err(crate::error::SimError::EmptyProgram);
    }
    if bram_grants.len() != prog.layers.len() {
        return Err(crate::error::SimError::GrantCountMismatch {
            expected: prog.layers.len(),
            got: bram_grants.len(),
        });
    }
    let total_layers = prog.layers.len() as u64;
    let mut layers = Vec::with_capacity(prog.layers.len());
    for (li, (plan, &granted)) in prog.layers.iter().zip(bram_grants).enumerate() {
        budget::check("sim-layer", Progress::of(li as u64, total_layers))?;
        let shape = LayerShape::from_plan(plan, prog.degree, w_bits);
        let cfg = layer_governing_config(plan.class, &point.modules);
        let demand = layer_bram_blocks(&shape, &cfg);
        let cycles =
            (layer_makespan_cycles(plan, point, prog.degree)? as f64 * LAYER_PIPELINE_OVERHEAD)
                as u64;
        let stall = stall_factor(granted, demand, plan.class);
        let seconds = cycles as f64 * device.cycle_seconds() * stall;
        layers.push(LayerSim {
            name: plan.name.clone(),
            cycles,
            stall,
            seconds,
            bram_demand: demand,
            bram_granted: granted,
        });
    }
    let total_seconds: f64 = layers.iter().map(|l| l.seconds).sum();
    Ok(SimReport {
        layers,
        total_seconds,
        energy_joules: total_seconds * device.tdp_watts(),
    })
}

/// Simulates with explicit BRAM grants.
///
/// # Panics
///
/// Panics when the grant vector does not line up with the program;
/// [`try_simulate_with_grants`] returns a typed error instead.
pub fn simulate_with_grants(
    prog: &HeCnnProgram,
    point: &DesignPoint,
    device: &FpgaDevice,
    w_bits: u32,
    bram_grants: &[usize],
) -> SimReport {
    try_simulate_with_grants(prog, point, device, w_bits, bram_grants).expect("simulation")
}

/// Simulates a fully buffered FxHENN design (every layer granted its
/// demand — valid whenever the DSE marked the point feasible, since the
/// peak demand fits the device). Returns a typed error for an empty
/// program.
pub fn try_simulate(
    prog: &HeCnnProgram,
    point: &DesignPoint,
    device: &FpgaDevice,
    w_bits: u32,
) -> Result<SimReport, crate::error::SimError> {
    let grants: Vec<usize> = prog
        .layers
        .iter()
        .map(|plan| {
            let shape = LayerShape::from_plan(plan, prog.degree, w_bits);
            let cfg = layer_governing_config(plan.class, &point.modules);
            layer_bram_blocks(&shape, &cfg)
        })
        .collect();
    try_simulate_with_grants(prog, point, device, w_bits, &grants)
}

/// Simulates a fully buffered FxHENN design.
///
/// # Panics
///
/// Panics for an empty program; [`try_simulate`] returns a typed error
/// instead.
pub fn simulate(
    prog: &HeCnnProgram,
    point: &DesignPoint,
    device: &FpgaDevice,
    w_bits: u32,
) -> SimReport {
    try_simulate(prog, point, device, w_bits).expect("simulation")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxhenn_dse::design::evaluate;
    use fxhenn_nn::{fxhenn_mnist, lower_network};

    fn mnist() -> HeCnnProgram {
        lower_network(&fxhenn_mnist(1), 8192, 7)
    }

    #[test]
    fn simulator_agrees_with_analytic_model() {
        let prog = mnist();
        let device = FpgaDevice::acu9eg();
        let point = DesignPoint::minimal();
        let sim = simulate(&prog, &point, &device, 30);
        let analytic = evaluate(&prog, &point, &device, 30);
        let ratio = sim.total_seconds / analytic.latency_s;
        assert!(
            (0.7..=1.6).contains(&ratio),
            "event simulation ({:.3}s) vs analytic model ({:.3}s): ratio {ratio:.2}",
            sim.total_seconds,
            analytic.latency_s
        );
    }

    #[test]
    fn fully_buffered_layers_do_not_stall() {
        let prog = mnist();
        let sim = simulate(&prog, &DesignPoint::minimal(), &FpgaDevice::acu9eg(), 30);
        for l in &sim.layers {
            assert_eq!(l.stall, 1.0, "{} should not stall", l.name);
            assert_eq!(l.bram_granted, l.bram_demand);
        }
    }

    #[test]
    fn starved_layers_slow_down() {
        let prog = mnist();
        let device = FpgaDevice::acu9eg();
        let point = DesignPoint::minimal();
        let full = simulate(&prog, &point, &device, 30);
        let halves: Vec<usize> = full.layers.iter().map(|l| l.bram_demand / 2).collect();
        let starved = simulate_with_grants(&prog, &point, &device, 30, &halves);
        assert!(starved.total_seconds > full.total_seconds * 1.3);
        for l in &starved.layers {
            assert!(l.stall > 1.0, "{} should stall", l.name);
        }
    }

    #[test]
    fn zero_grants_reproduce_table3_magnitude() {
        // Table III: Fc1 all-off-chip is ~139x slower.
        let prog = mnist();
        let device = FpgaDevice::acu9eg();
        let point = DesignPoint::minimal();
        let full = simulate(&prog, &point, &device, 30);
        let zeros = vec![0usize; prog.layers.len()];
        let off = simulate_with_grants(&prog, &point, &device, 30, &zeros);
        let fc1_idx = prog.layers.iter().position(|l| l.name == "Fc1").unwrap();
        let ratio = off.layers[fc1_idx].seconds / full.layers[fc1_idx].seconds;
        assert!(
            (130.0..150.0).contains(&ratio),
            "Fc1 off-chip ratio = {ratio:.1} (paper 139.6x)"
        );
    }

    #[test]
    fn bottleneck_is_fc1() {
        let prog = mnist();
        let sim = simulate(&prog, &DesignPoint::minimal(), &FpgaDevice::acu9eg(), 30);
        assert_eq!(sim.bottleneck().name, "Fc1");
    }

    #[test]
    fn energy_is_tdp_times_latency() {
        let prog = mnist();
        let device = FpgaDevice::acu9eg();
        let sim = simulate(&prog, &DesignPoint::minimal(), &device, 30);
        assert!((sim.energy_joules - sim.total_seconds * 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "one BRAM grant per layer")]
    fn wrong_grant_count_panics() {
        let prog = mnist();
        simulate_with_grants(
            &prog,
            &DesignPoint::minimal(),
            &FpgaDevice::acu9eg(),
            30,
            &[1, 2],
        );
    }

    #[test]
    fn wrong_grant_count_is_a_typed_error() {
        let prog = mnist();
        let err = try_simulate_with_grants(
            &prog,
            &DesignPoint::minimal(),
            &FpgaDevice::acu9eg(),
            30,
            &[1, 2],
        )
        .unwrap_err();
        assert_eq!(
            err,
            crate::error::SimError::GrantCountMismatch {
                expected: prog.layers.len(),
                got: 2
            }
        );
    }

    #[test]
    fn stalled_station_surfaces_as_cancelled_within_twice_the_deadline() {
        use fxhenn_math::budget::Budget;
        use std::time::{Duration, Instant};
        let prog = mnist();
        let deadline = Duration::from_millis(50);
        let t0 = Instant::now();
        // 5 ms per station claim over thousands of trace records would
        // run for minutes; the budget must cut it off at the deadline.
        let err = crate::faults::with_station_stall(Duration::from_millis(5), || {
            budget::with_budget(&Budget::with_deadline(deadline), || {
                try_simulate(&prog, &DesignPoint::minimal(), &FpgaDevice::acu9eg(), 30)
            })
        })
        .unwrap_err();
        let elapsed = t0.elapsed();
        match err {
            crate::error::SimError::Cancelled(stop) => {
                assert_eq!(stop.phase, "sim-station");
            }
            other => panic!("expected cancellation, got {other}"),
        }
        assert!(
            elapsed < deadline * 2,
            "stopped after {elapsed:?}, more than 2x the {deadline:?} deadline"
        );
    }

    #[test]
    fn empty_report_has_no_bottleneck() {
        let report = SimReport {
            layers: vec![],
            total_seconds: 0.0,
            energy_joules: 0.0,
        };
        assert!(report.try_bottleneck().is_none());
    }
}

//! Cooperative execution budgets: wall-clock deadlines and cancellation.
//!
//! FxHENN's value proposition is *bounded* latency — the DSE guarantees
//! an inference finishes within a device budget (Eqs. 1–9). The software
//! stack mirrors that guarantee with a cooperative [`Budget`]: a
//! deadline plus a [`CancelToken`] that every long-running loop checks
//! at a natural granularity (limb batch, HE op, network layer, DSE
//! point, simulated trace record). A loop that observes an exhausted
//! budget stops at the next check point and returns a typed
//! `Cancelled`-style error carrying the phase, the elapsed time and how
//! far it got — never a wedged thread, never a partial result passed
//! off as complete.
//!
//! # Ambient installation
//!
//! Budgets are installed for a dynamic scope with [`with_budget`]; the
//! checks ([`check`]) read the calling thread's ambient budget, so deep
//! callees (the evaluator inside the executor inside the co-simulator)
//! honour the caller's deadline without every signature carrying a
//! budget parameter. [`crate::par`]'s scheduling point forwards the
//! ambient budget into its worker threads, so limb-parallel work items
//! see the same deadline as the thread that spawned them.
//!
//! With no ambient budget installed every check is `Ok(())` and costs
//! one thread-local read — the unbudgeted hot path stays unchanged.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared cancellation flag: clone it, hand one handle to the worker
/// and keep one to cancel from outside (another thread, a signal
/// handler, a serve-driver admission loop).
///
/// Shutdown is two-phase. [`request_drain`](Self::request_drain) is the
/// soft phase: admission loops stop accepting new work but in-flight
/// requests run to completion — budget checks keep passing. [`cancel`]
/// (Self::cancel) is the hard phase: every budget gate observes the
/// stop at its next check point. Draining a token never cancels it;
/// cancelling a token implies it is also draining (no admission while
/// tearing down).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    drain: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// True once any clone has called [`cancel`](Self::cancel).
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// Requests a graceful drain: stop admitting new work, let
    /// in-flight work finish. Advisory — budget checks ignore it;
    /// admission paths consult [`is_draining`](Self::is_draining).
    /// Idempotent; visible to every clone.
    pub fn request_drain(&self) {
        self.drain.store(true, Ordering::SeqCst);
    }

    /// True once any clone has requested a drain *or* a hard cancel
    /// (cancellation implies no further admission).
    pub fn is_draining(&self) -> bool {
        self.drain.load(Ordering::SeqCst) || self.is_cancelled()
    }
}

/// How far a cancelled loop had progressed when it stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Progress {
    /// Work items completed before the stop (ops, layers, points,
    /// records — the phase names the unit).
    pub done: u64,
    /// Total work items, when the loop knows it up front.
    pub total: Option<u64>,
}

impl Progress {
    /// Progress with an unknown total.
    pub fn done(done: u64) -> Self {
        Self { done, total: None }
    }

    /// Progress out of a known total.
    pub fn of(done: u64, total: u64) -> Self {
        Self {
            done,
            total: Some(total),
        }
    }
}

impl std::fmt::Display for Progress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.total {
            Some(t) => write!(f, "{}/{t}", self.done),
            None => write!(f, "{}", self.done),
        }
    }
}

/// Why a budget check said "stop".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCause {
    /// The [`CancelToken`] was triggered.
    CancelRequested,
    /// The wall-clock deadline passed.
    DeadlineExpired {
        /// The deadline that was set.
        deadline: Duration,
    },
}

/// A failed budget check: the typed payload every per-crate `Cancelled`
/// error wraps.
#[derive(Clone, PartialEq)]
pub struct BudgetStop {
    /// The loop that observed the stop ("he-op", "layer",
    /// "dse-explore", "sim-station", ...).
    pub phase: &'static str,
    /// Why the loop stopped.
    pub cause: StopCause,
    /// Wall-clock time since the budget started.
    pub elapsed: Duration,
    /// How far the loop got.
    pub progress: Progress,
}

impl std::fmt::Display for BudgetStop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cause = match self.cause {
            StopCause::CancelRequested => "cancelled".to_string(),
            StopCause::DeadlineExpired { deadline } => {
                format!("deadline of {deadline:?} expired")
            }
        };
        write!(
            f,
            "{cause} during {} after {:?} ({} items done)",
            self.phase, self.elapsed, self.progress
        )
    }
}

impl std::fmt::Debug for BudgetStop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(self, f)
    }
}

impl std::error::Error for BudgetStop {}

/// A cooperative execution budget: an optional wall-clock deadline and
/// an optional cancellation token, measured from [`Budget::start`] (or
/// construction).
#[derive(Debug, Clone)]
pub struct Budget {
    started: Instant,
    deadline: Option<Duration>,
    token: Option<CancelToken>,
}

impl Budget {
    /// A budget that never stops anything (checks always pass).
    pub fn unlimited() -> Self {
        Self {
            started: Instant::now(),
            deadline: None,
            token: None,
        }
    }

    /// A budget that expires `deadline` after construction.
    pub fn with_deadline(deadline: Duration) -> Self {
        Self {
            started: Instant::now(),
            deadline: Some(deadline),
            token: None,
        }
    }

    /// Attaches a cancellation token (builder style).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.token = Some(token);
        self
    }

    /// Restarts the clock: elapsed time and the deadline are measured
    /// from now. Used by drivers that construct a budget ahead of
    /// dispatching the request it bounds.
    pub fn start(mut self) -> Self {
        self.started = Instant::now();
        self
    }

    /// Time since the budget('s clock) started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Time left before the deadline (`None` when no deadline is set,
    /// zero once expired).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_sub(self.elapsed()))
    }

    /// True when a check would fail right now.
    pub fn is_exhausted(&self) -> bool {
        self.exhaustion().is_some()
    }

    fn exhaustion(&self) -> Option<StopCause> {
        if self.token.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Some(StopCause::CancelRequested);
        }
        match self.deadline {
            Some(d) if self.elapsed() >= d => Some(StopCause::DeadlineExpired { deadline: d }),
            _ => None,
        }
    }

    /// The cooperative check point: `Ok(())` while the budget holds,
    /// a typed [`BudgetStop`] naming `phase` and `progress` once the
    /// token fired or the deadline passed.
    pub fn check(&self, phase: &'static str, progress: Progress) -> Result<(), BudgetStop> {
        match self.exhaustion() {
            None => Ok(()),
            Some(cause) => Err(BudgetStop {
                phase,
                cause,
                elapsed: self.elapsed(),
                progress,
            }),
        }
    }
}

impl Default for Budget {
    fn default() -> Self {
        Self::unlimited()
    }
}

thread_local! {
    static AMBIENT: RefCell<Option<Budget>> = const { RefCell::new(None) };
}

/// Runs `f` with `budget` installed as the calling thread's ambient
/// budget, restoring the previous ambient afterwards. Nested
/// installations shadow outer ones for their scope.
pub fn with_budget<R>(budget: &Budget, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Budget>);
    impl Drop for Restore {
        fn drop(&mut self) {
            AMBIENT.with(|b| *b.borrow_mut() = self.0.take());
        }
    }
    let prev = AMBIENT.with(|b| b.borrow_mut().replace(budget.clone()));
    let _restore = Restore(prev);
    f()
}

/// The calling thread's ambient budget, if one is installed.
/// [`crate::par`] uses this to forward the budget into worker threads.
pub fn current() -> Option<Budget> {
    AMBIENT.with(|b| b.borrow().clone())
}

/// Checks the ambient budget: always `Ok(())` when none is installed.
pub fn check(phase: &'static str, progress: Progress) -> Result<(), BudgetStop> {
    AMBIENT.with(|b| match &*b.borrow() {
        None => Ok(()),
        Some(budget) => budget.check(phase, progress),
    })
}

/// True when an ambient budget is installed and already exhausted.
pub fn ambient_exhausted() -> bool {
    AMBIENT.with(|b| b.borrow().as_ref().is_some_and(Budget::is_exhausted))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_always_passes() {
        let b = Budget::unlimited();
        assert!(b.check("x", Progress::done(0)).is_ok());
        assert!(!b.is_exhausted());
        assert_eq!(b.remaining(), None);
    }

    #[test]
    fn expired_deadline_stops_with_cause_and_progress() {
        let b = Budget::with_deadline(Duration::ZERO);
        let stop = b.check("phase-x", Progress::of(3, 10)).unwrap_err();
        assert_eq!(stop.phase, "phase-x");
        assert_eq!(stop.progress, Progress::of(3, 10));
        assert!(matches!(stop.cause, StopCause::DeadlineExpired { .. }));
        assert!(stop.to_string().contains("phase-x"), "{stop}");
        assert!(stop.to_string().contains("3/10"), "{stop}");
    }

    #[test]
    fn drain_is_advisory_and_cancel_implies_draining() {
        let token = CancelToken::new();
        let b = Budget::unlimited().with_cancel(token.clone());
        token.request_drain();
        // Drain stops admission, not in-flight work: checks still pass.
        assert!(token.is_draining());
        assert!(!token.is_cancelled());
        assert!(b.check("in-flight", Progress::done(1)).is_ok());
        // Hard cancel flips both.
        let hard = CancelToken::new();
        hard.cancel();
        assert!(hard.is_cancelled());
        assert!(hard.is_draining(), "cancel must imply draining");
    }

    #[test]
    fn cancel_token_stops_every_clone() {
        let token = CancelToken::new();
        let b = Budget::unlimited().with_cancel(token.clone());
        assert!(b.check("p", Progress::done(0)).is_ok());
        token.clone().cancel();
        let stop = b.check("p", Progress::done(7)).unwrap_err();
        assert_eq!(stop.cause, StopCause::CancelRequested);
    }

    #[test]
    fn ambient_budget_is_scoped_and_restored() {
        assert!(check("outside", Progress::done(0)).is_ok());
        let b = Budget::with_deadline(Duration::ZERO);
        with_budget(&b, || {
            assert!(check("inside", Progress::done(0)).is_err());
            with_budget(&Budget::unlimited(), || {
                assert!(check("nested", Progress::done(0)).is_ok());
            });
            assert!(check("inside-again", Progress::done(0)).is_err());
        });
        assert!(check("after", Progress::done(0)).is_ok());
        assert!(current().is_none());
    }

    #[test]
    fn remaining_counts_down_and_saturates() {
        let b = Budget::with_deadline(Duration::from_secs(3600));
        let r = b.remaining().unwrap();
        assert!(r <= Duration::from_secs(3600) && r > Duration::from_secs(3500));
        let expired = Budget::with_deadline(Duration::ZERO);
        assert_eq!(expired.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn restart_resets_the_clock() {
        let b = Budget::with_deadline(Duration::from_secs(60));
        std::thread::sleep(Duration::from_millis(2));
        let restarted = b.clone().start();
        assert!(restarted.elapsed() < b.elapsed());
    }
}

//! Typed errors for HE-CNN lowering and execution.
//!
//! [`LowerError`] covers everything the analytic lowering can reject
//! (network structure, slot capacity, level budget); [`ExecError`] covers
//! the functional executor's runtime failures, including evaluator
//! precondition violations ([`EvalError`]) and predicted noise-budget
//! exhaustion. Both carry the layer name so a failure deep in a network
//! points at the offending layer, not just the offending ciphertext.
//!
//! `Debug` delegates to `Display` so `expect`-style panics in tests and
//! benches print the same message a caller would log.

use fxhenn_ckks::EvalError;
use fxhenn_math::budget::BudgetStop;
use std::fmt;

/// A structural or budget problem found while lowering a network.
#[derive(Clone, PartialEq)]
pub enum LowerError {
    /// The network has no layers.
    EmptyNetwork,
    /// The LoLa offset packing requires a convolution front end.
    FirstLayerNotConv,
    /// A layer that consumes a lowered input appeared before any
    /// producing layer.
    MissingInput {
        /// The layer missing its input.
        layer: String,
    },
    /// A dense layer's `in_features` disagrees with the incoming layout.
    DenseSizeMismatch {
        /// The dense layer.
        layer: String,
        /// `in_features` declared by the layer.
        expected: usize,
        /// Values actually present at the boundary.
        got: usize,
    },
    /// A spatial layer (pooling, channel scale) received a non-CHW shape.
    NotChw {
        /// The offending layer.
        layer: String,
        /// Rank of the shape that arrived.
        rank: usize,
    },
    /// A channel-scale layer's factor count disagrees with the channels.
    ChannelMismatch {
        /// The offending layer.
        layer: String,
        /// Factors carried by the layer.
        scales: usize,
        /// Channels at the boundary.
        channels: usize,
    },
    /// The multiplicative depth exceeds the level budget.
    LevelBudgetExhausted {
        /// The layer whose lowering would drop below level 1.
        layer: String,
        /// The starting level budget that proved insufficient.
        max_level: usize,
    },
    /// A convolution's output map has more positions than the ring's
    /// slots can hold.
    ConvDoesNotFitSlots {
        /// The convolution layer.
        layer: String,
        /// Output positions (`oh * ow`).
        positions: usize,
        /// Available slots (`N / 2`).
        slots: usize,
    },
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::EmptyNetwork => f.write_str("network has no layers"),
            LowerError::FirstLayerNotConv => {
                f.write_str("LoLa packing expects a convolution front end")
            }
            LowerError::MissingInput { layer } => {
                write!(f, "{layer} has no lowered input")
            }
            LowerError::DenseSizeMismatch {
                layer,
                expected,
                got,
            } => write!(
                f,
                "dense input size mismatch at {layer}: layer expects \
                 {expected} features, layout carries {got}"
            ),
            LowerError::NotChw { layer, rank } => {
                write!(f, "{layer} needs a CHW shape (got rank {rank})")
            }
            LowerError::ChannelMismatch {
                layer,
                scales,
                channels,
            } => write!(
                f,
                "channel mismatch at {layer}: {scales} scale factors \
                 for {channels} channels"
            ),
            LowerError::LevelBudgetExhausted { layer, max_level } => write!(
                f,
                "level budget exhausted at layer {layer}: needs more than \
                 {max_level} levels"
            ),
            LowerError::ConvDoesNotFitSlots {
                layer,
                positions,
                slots,
            } => write!(
                f,
                "conv output map at {layer} ({positions} positions) must \
                 fit in {slots} slots"
            ),
        }
    }
}

impl fmt::Debug for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl std::error::Error for LowerError {}

/// A runtime failure of the functional HE-CNN executor.
#[derive(Clone, PartialEq)]
pub enum ExecError {
    /// The network has no layers.
    EmptyNetwork,
    /// The LoLa offset packing requires a convolution front end.
    FirstLayerNotConv,
    /// A layer found no ciphertext state to consume.
    MissingInput {
        /// The layer missing its input.
        layer: String,
    },
    /// A dense layer's `in_features` disagrees with the carried layout.
    DenseSizeMismatch {
        /// The dense layer.
        layer: String,
        /// `in_features` declared by the layer.
        expected: usize,
        /// Values actually present at the boundary.
        got: usize,
    },
    /// The encrypted input's packing shape disagrees with the network's
    /// front convolution.
    PackingMismatch {
        /// The consuming layer.
        layer: String,
        /// What mismatched ("group count", "offset count").
        what: &'static str,
        /// Count expected by the layer.
        expected: usize,
        /// Count found in the input.
        got: usize,
    },
    /// A channel-scale layer received a non-CHW state.
    NotChw {
        /// The offending layer.
        layer: String,
        /// Rank of the shape that arrived.
        rank: usize,
    },
    /// A consolidation pass met a layout it cannot fold.
    Unconsolidatable {
        /// The dense-like layer being consolidated.
        layer: String,
        /// Debug rendering of the unexpected layout.
        layout: String,
    },
    /// The analytic noise estimate predicts decryption would return
    /// garbage; execution stops instead of silently producing it.
    NoiseBudgetExhausted {
        /// The layer whose operation crossed the floor.
        layer: String,
        /// The HE operation that crossed it.
        op: &'static str,
        /// The (non-positive) predicted budget in bits.
        budget_bits: f64,
    },
    /// An evaluator precondition was violated mid-run.
    Eval {
        /// The layer being executed.
        layer: String,
        /// The underlying evaluator error.
        source: EvalError,
    },
    /// The pre-flight level check found too few remaining levels for the
    /// layer's rescale/multiply depth: the run fails at the layer
    /// boundary, naming the layer, instead of hitting the rescale floor
    /// deep inside the evaluator.
    InsufficientLevels {
        /// The layer that could not be admitted.
        layer: String,
        /// Levels remaining on the carried ciphertexts.
        have: usize,
        /// Levels the layer needs at entry to complete.
        need: usize,
    },
    /// The execution budget expired or was cancelled at a layer
    /// boundary.
    Cancelled(BudgetStop),
}

impl ExecError {
    /// The underlying [`EvalError`], if this wraps one.
    pub fn eval_source(&self) -> Option<&EvalError> {
        match self {
            ExecError::Eval { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::EmptyNetwork => f.write_str("network has no layers"),
            ExecError::FirstLayerNotConv => {
                f.write_str("LoLa packing expects a convolution front end")
            }
            ExecError::MissingInput { layer } => write!(f, "{layer} has no input"),
            ExecError::DenseSizeMismatch {
                layer,
                expected,
                got,
            } => write!(
                f,
                "dense input mismatch at {layer}: layer expects {expected} \
                 features, state carries {got}"
            ),
            ExecError::PackingMismatch {
                layer,
                what,
                expected,
                got,
            } => write!(
                f,
                "input packing {what} mismatch at {layer}: expected \
                 {expected}, got {got}"
            ),
            ExecError::NotChw { layer, rank } => {
                write!(f, "channel scale at {layer} needs a CHW shape (got rank {rank})")
            }
            ExecError::Unconsolidatable { layer, layout } => {
                write!(f, "cannot consolidate layout {layout} at {layer}")
            }
            ExecError::NoiseBudgetExhausted {
                layer,
                op,
                budget_bits,
            } => write!(
                f,
                "noise budget exhausted at {layer} ({op}): \
                 {budget_bits:.1} bits remaining"
            ),
            ExecError::Eval { layer, source } => {
                write!(f, "HE evaluation failed at {layer}: {source}")
            }
            ExecError::InsufficientLevels { layer, have, need } => write!(
                f,
                "insufficient levels at layer {layer}: {have} remaining, \
                 needs {need} to multiply and rescale"
            ),
            ExecError::Cancelled(stop) => write!(f, "execution stopped: {stop}"),
        }
    }
}

impl From<BudgetStop> for ExecError {
    fn from(stop: BudgetStop) -> Self {
        ExecError::Cancelled(stop)
    }
}

impl fmt::Debug for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Eval { source, .. } => Some(source),
            ExecError::Cancelled(stop) => Some(stop),
            _ => None,
        }
    }
}

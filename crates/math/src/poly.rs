//! RNS polynomials in `Z_Q[X]/(X^N + 1)`.
//!
//! An [`RnsPoly`] stores one residue polynomial per prime of its basis and
//! tracks whether it currently lives in the coefficient or the NTT
//! (evaluation) domain. The HE operation modules of the paper operate on
//! exactly these per-prime residue polynomials; the level `L` of a
//! ciphertext is the number of residue components (`poly_{q_i}` in paper
//! Sec. V-B).
//!
//! The per-prime loops are the hot path of every HE operation, so they are
//! scheduled through [`crate::par`] (one unit of work per RNS limb,
//! mirroring the paper's `nc_NTT` parallel NTT cores) and use the Barrett
//! and Shoup reduction primitives from [`crate::modops`] instead of a
//! `u128` division per coefficient. Both choices are bit-identical to the
//! naive serial path. The `*_into` / fused variants exist so the
//! evaluator can reuse scratch buffers instead of cloning on every op.

use crate::modops::{
    add_mod, add_mod_x4, neg_mod, neg_mod_x4, sub_mod, sub_mod_x4, BarrettReducer, ShoupMul, LANES,
};
use crate::ntt::NttTable;
use crate::par;

/// Applies `f4` to aligned [`LANES`]-wide blocks of `dst` zipped with
/// `src`, and `f1` to the scalar remainder. The lane callbacks receive
/// four independent values, so the four dependency chains stay visible
/// to the autovectorizer — the same `P_intra` idiom as the NTT
/// butterflies.
#[inline]
fn zip_lanes(
    dst: &mut [u64],
    src: &[u64],
    mut f4: impl FnMut([u64; LANES], [u64; LANES]) -> [u64; LANES],
    mut f1: impl FnMut(u64, u64) -> u64,
) {
    debug_assert_eq!(dst.len(), src.len());
    let mut d4 = dst.chunks_exact_mut(LANES);
    let mut s4 = src.chunks_exact(LANES);
    for (xs, ys) in (&mut d4).zip(&mut s4) {
        let r = f4([xs[0], xs[1], xs[2], xs[3]], [ys[0], ys[1], ys[2], ys[3]]);
        xs.copy_from_slice(&r);
    }
    for (x, &y) in d4.into_remainder().iter_mut().zip(s4.remainder()) {
        *x = f1(*x, y);
    }
}

/// Three-operand variant of [`zip_lanes`]: `dst[j] = f(dst[j], a[j], b[j])`.
#[inline]
fn zip_lanes2(
    dst: &mut [u64],
    a: &[u64],
    b: &[u64],
    mut f4: impl FnMut([u64; LANES], [u64; LANES], [u64; LANES]) -> [u64; LANES],
    mut f1: impl FnMut(u64, u64, u64) -> u64,
) {
    debug_assert_eq!(dst.len(), a.len());
    debug_assert_eq!(dst.len(), b.len());
    let mut d4 = dst.chunks_exact_mut(LANES);
    let mut a4 = a.chunks_exact(LANES);
    let mut b4 = b.chunks_exact(LANES);
    for ((ds, xs), ys) in (&mut d4).zip(&mut a4).zip(&mut b4) {
        let r = f4(
            [ds[0], ds[1], ds[2], ds[3]],
            [xs[0], xs[1], xs[2], xs[3]],
            [ys[0], ys[1], ys[2], ys[3]],
        );
        ds.copy_from_slice(&r);
    }
    for ((d, &x), &y) in d4
        .into_remainder()
        .iter_mut()
        .zip(a4.remainder())
        .zip(b4.remainder())
    {
        *d = f1(*d, x, y);
    }
}

/// In-place single-operand variant of [`zip_lanes`].
#[inline]
fn map_lanes(
    dst: &mut [u64],
    mut f4: impl FnMut([u64; LANES]) -> [u64; LANES],
    mut f1: impl FnMut(u64) -> u64,
) {
    let mut d4 = dst.chunks_exact_mut(LANES);
    for xs in &mut d4 {
        let r = f4([xs[0], xs[1], xs[2], xs[3]]);
        xs.copy_from_slice(&r);
    }
    for x in d4.into_remainder() {
        *x = f1(*x);
    }
}

/// Which domain the residue coefficients are expressed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Power-basis coefficients.
    Coeff,
    /// NTT / evaluation domain (slot-wise products are ring products).
    Ntt,
}

/// Read-only access to the residue limbs of an RNS polynomial,
/// independent of how they are stored.
///
/// Implemented by [`RnsPoly`] (one owned `Vec<u64>` per limb) and by
/// [`BorrowedRnsPoly`] (a contiguous `&[u64]` window over a wire buffer).
/// The kernels below take their *read-only* operands through this trait,
/// so a decoded-in-place ciphertext view can feed the evaluator without
/// first being copied into owned vectors. `Sync` is a supertrait because
/// the per-limb loops may fan out across threads via [`crate::par`].
pub trait PolyLimbs: Sync {
    /// Ring degree `N`.
    fn degree(&self) -> usize;
    /// Number of residue components (the ciphertext level `L`).
    fn level_count(&self) -> usize;
    /// Current domain.
    fn domain(&self) -> Domain;
    /// Residue polynomial for prime `i` (`N` coefficients).
    fn limb(&self, i: usize) -> &[u64];
}

impl PolyLimbs for RnsPoly {
    #[inline]
    fn degree(&self) -> usize {
        self.n
    }
    #[inline]
    fn level_count(&self) -> usize {
        self.residues.len()
    }
    #[inline]
    fn domain(&self) -> Domain {
        self.domain
    }
    #[inline]
    fn limb(&self, i: usize) -> &[u64] {
        &self.residues[i]
    }
}

/// An RNS polynomial borrowed from a contiguous word buffer: `levels`
/// limbs of `n` words each, limb-major — the v2 wire layout's evaluation
/// order. Construction only checks the shape; residue range checks are
/// the caller's job (`validate_ciphertext`-style).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BorrowedRnsPoly<'a> {
    n: usize,
    levels: usize,
    domain: Domain,
    words: &'a [u64],
}

impl<'a> BorrowedRnsPoly<'a> {
    /// Wraps `words` as `levels` limbs of degree `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two, `levels == 0`, or
    /// `words.len() != n * levels`.
    pub fn new(words: &'a [u64], n: usize, levels: usize, domain: Domain) -> Self {
        assert!(n.is_power_of_two(), "degree must be a power of two");
        assert!(levels > 0, "a polynomial needs at least one residue");
        assert_eq!(words.len(), n * levels, "word count must equal n * levels");
        Self {
            n,
            levels,
            domain,
            words,
        }
    }

    /// The whole limb-major word window.
    #[inline]
    pub fn words(&self) -> &'a [u64] {
        self.words
    }

    /// Copies the borrowed limbs into an owned [`RnsPoly`].
    pub fn to_owned_poly(&self) -> RnsPoly {
        let residues = (0..self.levels)
            .map(|i| self.words[i * self.n..(i + 1) * self.n].to_vec())
            .collect();
        RnsPoly {
            n: self.n,
            residues,
            domain: self.domain,
        }
    }
}

impl<P: PolyLimbs + ?Sized> PolyLimbs for &P {
    #[inline]
    fn degree(&self) -> usize {
        (**self).degree()
    }
    #[inline]
    fn level_count(&self) -> usize {
        (**self).level_count()
    }
    #[inline]
    fn domain(&self) -> Domain {
        (**self).domain()
    }
    #[inline]
    fn limb(&self, i: usize) -> &[u64] {
        (**self).limb(i)
    }
}

impl PolyLimbs for BorrowedRnsPoly<'_> {
    #[inline]
    fn degree(&self) -> usize {
        self.n
    }
    #[inline]
    fn level_count(&self) -> usize {
        self.levels
    }
    #[inline]
    fn domain(&self) -> Domain {
        self.domain
    }
    #[inline]
    fn limb(&self, i: usize) -> &[u64] {
        &self.words[i * self.n..(i + 1) * self.n]
    }
}

fn check_compatible<A: PolyLimbs + ?Sized, B: PolyLimbs + ?Sized>(a: &A, b: &B) {
    assert_eq!(a.degree(), b.degree(), "degree mismatch");
    assert_eq!(
        a.level_count(),
        b.level_count(),
        "level mismatch: {} vs {}",
        a.level_count(),
        b.level_count()
    );
    assert_eq!(
        a.domain(),
        b.domain(),
        "domain mismatch: {} vs {}",
        a.domain(),
        b.domain()
    );
}

/// `out = a * b` pointwise over any two limb sources (both NTT-domain),
/// reusing `out`'s buffers. The generic twin of
/// [`RnsPoly::mul_pointwise_into`] for borrowed×borrowed products.
///
/// # Panics
///
/// Panics on shape/domain mismatch or if `moduli` does not match the
/// level count.
pub fn mul_pointwise_of<A: PolyLimbs + ?Sized, B: PolyLimbs + ?Sized>(
    a: &A,
    b: &B,
    moduli: &[u64],
    out: &mut RnsPoly,
) {
    check_compatible(a, b);
    assert_eq!(a.domain(), Domain::Ntt, "pointwise product needs NTT domain");
    assert_eq!(moduli.len(), a.level_count(), "one modulus per level");
    out.reshape(a.degree(), a.level_count(), Domain::Ntt);
    let grain = par::grain_linear(a.degree());
    par::for_each_indexed(&mut out.residues, grain, |i, o| {
        let red = BarrettReducer::new(moduli[i]);
        zip_lanes2(
            o,
            a.limb(i),
            b.limb(i),
            |_, x, y| red.mul_x4(x, y),
            |_, x, y| red.mul(x, y),
        );
    });
}

impl std::fmt::Display for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Domain::Coeff => f.write_str("coefficient"),
            Domain::Ntt => f.write_str("NTT"),
        }
    }
}

/// A polynomial over an RNS basis: `len` residue vectors of `N`
/// coefficients each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RnsPoly {
    n: usize,
    residues: Vec<Vec<u64>>,
    domain: Domain,
}

impl RnsPoly {
    /// The zero polynomial over `levels` primes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or `levels == 0`.
    pub fn zero(n: usize, levels: usize, domain: Domain) -> Self {
        assert!(n.is_power_of_two(), "degree must be a power of two");
        assert!(levels > 0, "a polynomial needs at least one residue");
        Self {
            n,
            residues: vec![vec![0u64; n]; levels],
            domain,
        }
    }

    /// Builds a polynomial from explicit residue vectors.
    ///
    /// # Panics
    ///
    /// Panics if the residue vectors are empty or of unequal length.
    pub fn from_residues(residues: Vec<Vec<u64>>, domain: Domain) -> Self {
        assert!(!residues.is_empty(), "need at least one residue vector");
        let n = residues[0].len();
        assert!(n.is_power_of_two(), "degree must be a power of two");
        assert!(
            residues.iter().all(|r| r.len() == n),
            "all residue vectors must have the same length"
        );
        Self {
            n,
            residues,
            domain,
        }
    }

    /// Ring degree `N`.
    #[inline]
    pub fn degree(&self) -> usize {
        self.n
    }

    /// Number of residue components (the ciphertext level `L`).
    #[inline]
    pub fn level_count(&self) -> usize {
        self.residues.len()
    }

    /// Current domain.
    #[inline]
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Residue polynomial for prime `i`.
    #[inline]
    pub fn component(&self, i: usize) -> &[u64] {
        &self.residues[i]
    }

    /// Mutable residue polynomial for prime `i`.
    #[inline]
    pub fn component_mut(&mut self, i: usize) -> &mut [u64] {
        &mut self.residues[i]
    }

    /// All residue polynomials, mutably — for callers that fill the limbs
    /// in parallel via [`crate::par::for_each_indexed`]. Callers must keep
    /// every value reduced below its prime and must not change the vector
    /// lengths.
    #[inline]
    pub fn components_mut(&mut self) -> &mut [Vec<u64>] {
        &mut self.residues
    }

    /// Reconfigures this polynomial in place to `levels` components of
    /// degree `n` in `domain`, reusing the existing buffers where
    /// possible. The coefficient contents are unspecified afterwards; use
    /// [`RnsPoly::reshape_zeroed`] when the caller accumulates into the
    /// buffer.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or `levels == 0`.
    pub fn reshape(&mut self, n: usize, levels: usize, domain: Domain) {
        assert!(n.is_power_of_two(), "degree must be a power of two");
        assert!(levels > 0, "a polynomial needs at least one residue");
        self.n = n;
        self.domain = domain;
        self.residues.truncate(levels);
        for r in &mut self.residues {
            r.resize(n, 0);
        }
        while self.residues.len() < levels {
            self.residues.push(vec![0u64; n]);
        }
    }

    /// Like [`RnsPoly::reshape`], but additionally zero-fills every
    /// component, yielding the zero polynomial without fresh allocations.
    pub fn reshape_zeroed(&mut self, n: usize, levels: usize, domain: Domain) {
        self.reshape(n, levels, domain);
        for r in &mut self.residues {
            r.fill(0);
        }
    }

    /// Makes `self` a copy of `other`, reusing `self`'s buffers instead of
    /// allocating like `clone()` does.
    pub fn copy_from(&mut self, other: &RnsPoly) {
        self.n = other.n;
        self.domain = other.domain;
        self.residues.truncate(other.residues.len());
        for (r, src) in self.residues.iter_mut().zip(&other.residues) {
            r.clear();
            r.extend_from_slice(src);
        }
        for src in other.residues.iter().skip(self.residues.len()) {
            self.residues.push(src.clone());
        }
    }

    /// Drops the last residue component, reducing the level by one (the
    /// tail of a Rescale).
    ///
    /// # Panics
    ///
    /// Panics if only one component remains.
    pub fn drop_last_component(&mut self) -> Vec<u64> {
        assert!(
            self.residues.len() > 1,
            "cannot drop the only residue component"
        );
        self.residues.pop().expect("non-empty by assertion")
    }

    /// Appends a residue component (used when raising to the keyswitch
    /// basis).
    ///
    /// # Panics
    ///
    /// Panics if the component length differs from the degree.
    pub fn push_component(&mut self, comp: Vec<u64>) {
        assert_eq!(comp.len(), self.n, "component length must equal degree");
        self.residues.push(comp);
    }

    fn assert_compatible<P: PolyLimbs + ?Sized>(&self, other: &P) {
        check_compatible(self, other);
    }

    /// Makes `self` a copy of any limb source, reusing `self`'s buffers
    /// like [`RnsPoly::copy_from`] (its generic twin for borrowed views).
    pub fn copy_from_limbs<P: PolyLimbs + ?Sized>(&mut self, other: &P) {
        let (n, levels) = (other.degree(), other.level_count());
        self.n = n;
        self.domain = other.domain();
        self.residues.truncate(levels);
        for (i, r) in self.residues.iter_mut().enumerate() {
            r.clear();
            r.extend_from_slice(other.limb(i));
        }
        for i in self.residues.len()..levels {
            self.residues.push(other.limb(i).to_vec());
        }
    }

    /// `self += other` componentwise.
    ///
    /// # Panics
    ///
    /// Panics on degree, level or domain mismatch, or if `moduli` does not
    /// match the level count.
    pub fn add_assign<P: PolyLimbs + ?Sized>(&mut self, other: &P, moduli: &[u64]) {
        self.assert_compatible(other);
        assert_eq!(moduli.len(), self.residues.len(), "one modulus per level");
        let grain = par::grain_linear(self.n);
        par::for_each_indexed(&mut self.residues, grain, |i, a| {
            let q = moduli[i];
            zip_lanes(
                a,
                other.limb(i),
                |x, y| add_mod_x4(x, y, q),
                |x, y| add_mod(x, y, q),
            );
        });
    }

    /// `self -= other` componentwise.
    pub fn sub_assign<P: PolyLimbs + ?Sized>(&mut self, other: &P, moduli: &[u64]) {
        self.assert_compatible(other);
        assert_eq!(moduli.len(), self.residues.len(), "one modulus per level");
        let grain = par::grain_linear(self.n);
        par::for_each_indexed(&mut self.residues, grain, |i, a| {
            let q = moduli[i];
            zip_lanes(
                a,
                other.limb(i),
                |x, y| sub_mod_x4(x, y, q),
                |x, y| sub_mod(x, y, q),
            );
        });
    }

    /// `self = -self` componentwise.
    pub fn neg_assign(&mut self, moduli: &[u64]) {
        assert_eq!(moduli.len(), self.residues.len(), "one modulus per level");
        let grain = par::grain_linear(self.n);
        par::for_each_indexed(&mut self.residues, grain, |i, r| {
            let q = moduli[i];
            map_lanes(r, |x| neg_mod_x4(x, q), |x| neg_mod(x, q));
        });
    }

    /// Pointwise (slot-wise) product; both polynomials must be in the NTT
    /// domain.
    ///
    /// # Panics
    ///
    /// Panics if either polynomial is in the coefficient domain, or on
    /// shape mismatch.
    pub fn mul_pointwise_assign<P: PolyLimbs + ?Sized>(&mut self, other: &P, moduli: &[u64]) {
        self.assert_compatible(other);
        assert_eq!(self.domain, Domain::Ntt, "pointwise product needs NTT domain");
        assert_eq!(moduli.len(), self.residues.len(), "one modulus per level");
        let grain = par::grain_linear(self.n);
        par::for_each_indexed(&mut self.residues, grain, |i, a| {
            let red = BarrettReducer::new(moduli[i]);
            zip_lanes(
                a,
                other.limb(i),
                |x, y| red.mul_x4(x, y),
                |x, y| red.mul(x, y),
            );
        });
    }

    /// `out = self * other` pointwise, reusing `out`'s buffers. Equivalent
    /// to `out = self.clone()` followed by
    /// [`RnsPoly::mul_pointwise_assign`], without the allocation.
    pub fn mul_pointwise_into<P: PolyLimbs + ?Sized>(
        &self,
        other: &P,
        moduli: &[u64],
        out: &mut RnsPoly,
    ) {
        mul_pointwise_of(self, other, moduli, out);
    }

    /// Fused multiply-accumulate: `self += a * b` pointwise. Replaces the
    /// `clone`-multiply-add sequence of the evaluator's hot path with a
    /// single pass and zero allocations.
    ///
    /// # Panics
    ///
    /// Panics unless all three polynomials share degree, level count and
    /// the NTT domain.
    pub fn add_mul_pointwise<A: PolyLimbs + ?Sized, B: PolyLimbs + ?Sized>(
        &mut self,
        a: &A,
        b: &B,
        moduli: &[u64],
    ) {
        self.assert_compatible(a);
        check_compatible(a, b);
        assert_eq!(self.domain, Domain::Ntt, "pointwise product needs NTT domain");
        assert_eq!(moduli.len(), self.residues.len(), "one modulus per level");
        let grain = par::grain_linear(self.n);
        par::for_each_indexed(&mut self.residues, grain, |i, acc| {
            let q = moduli[i];
            let red = BarrettReducer::new(q);
            zip_lanes2(
                acc,
                a.limb(i),
                b.limb(i),
                |z, x, y| add_mod_x4(z, red.mul_x4(x, y), q),
                |z, x, y| add_mod(z, red.mul(x, y), q),
            );
        });
    }

    /// Fused multiply-accumulate against a component *selection* of `b`:
    /// `self[i] += a[i] * b[b_indices[i]]` pointwise. This is what the
    /// keyswitch inner product needs (the key polynomial lives in the full
    /// `max_level + special` basis and is addressed through the extended
    /// index list), and it avoids materialising `b.select_components()`.
    ///
    /// # Panics
    ///
    /// Panics unless `self` and `a` are shape-compatible, all three are in
    /// the NTT domain with equal degree, and every index is in range.
    pub fn add_mul_pointwise_select<A: PolyLimbs + ?Sized, B: PolyLimbs + ?Sized>(
        &mut self,
        a: &A,
        b: &B,
        b_indices: &[usize],
        moduli: &[u64],
    ) {
        self.assert_compatible(a);
        assert_eq!(self.domain, Domain::Ntt, "pointwise product needs NTT domain");
        assert_eq!(b.domain(), Domain::Ntt, "pointwise product needs NTT domain");
        assert_eq!(b.degree(), self.n, "degree mismatch");
        assert_eq!(
            b_indices.len(),
            self.residues.len(),
            "one b-component index per level"
        );
        assert_eq!(moduli.len(), self.residues.len(), "one modulus per level");
        assert!(
            b_indices.iter().all(|&j| j < b.level_count()),
            "b-component index out of range"
        );
        let grain = par::grain_linear(self.n);
        par::for_each_indexed(&mut self.residues, grain, |i, acc| {
            let q = moduli[i];
            let red = BarrettReducer::new(q);
            let bs = b.limb(b_indices[i]);
            zip_lanes2(
                acc,
                a.limb(i),
                bs,
                |z, x, y| add_mod_x4(z, red.mul_x4(x, y), q),
                |z, x, y| add_mod(z, red.mul(x, y), q),
            );
        });
    }

    /// Multiplies every coefficient of component `i` by the scalar
    /// `scalars[i]` (one scalar residue per prime).
    pub fn mul_scalar_assign(&mut self, scalars: &[u64], moduli: &[u64]) {
        assert_eq!(moduli.len(), self.residues.len(), "one modulus per level");
        assert_eq!(scalars.len(), self.residues.len(), "one scalar per level");
        let grain = par::grain_linear(self.n);
        par::for_each_indexed(&mut self.residues, grain, |i, r| {
            let q = moduli[i];
            let s = ShoupMul::new(scalars[i] % q, q);
            map_lanes(r, |x| s.mul_x4(x), |x| s.mul(x));
        });
    }

    /// Converts to the NTT domain in place; a no-op if already there.
    ///
    /// # Panics
    ///
    /// Panics if `tables.len()` does not match the level count or a table's
    /// modulus is inconsistent.
    pub fn to_ntt(&mut self, tables: &[&NttTable]) {
        if self.domain == Domain::Ntt {
            return;
        }
        assert_eq!(tables.len(), self.residues.len(), "one table per level");
        let grain = par::grain_ntt(self.n);
        par::for_each_indexed(&mut self.residues, grain, |i, r| tables[i].forward(r));
        self.domain = Domain::Ntt;
    }

    /// Converts to the coefficient domain in place; a no-op if already
    /// there.
    pub fn to_coeff(&mut self, tables: &[&NttTable]) {
        if self.domain == Domain::Coeff {
            return;
        }
        assert_eq!(tables.len(), self.residues.len(), "one table per level");
        let grain = par::grain_ntt(self.n);
        par::for_each_indexed(&mut self.residues, grain, |i, r| tables[i].inverse(r));
        self.domain = Domain::Coeff;
    }

    /// Returns a new polynomial holding only the selected residue
    /// components, in the given order (e.g. a level prefix, or a level
    /// prefix plus the special prime).
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or any index is out of range.
    pub fn select_components(&self, indices: &[usize]) -> RnsPoly {
        assert!(!indices.is_empty(), "need at least one component");
        let residues = indices
            .iter()
            .map(|&i| {
                assert!(i < self.residues.len(), "component index {i} out of range");
                self.residues[i].clone()
            })
            .collect();
        RnsPoly {
            n: self.n,
            residues,
            domain: self.domain,
        }
    }

    /// Applies the Galois automorphism `X → X^g` in the coefficient
    /// domain, writing the permuted polynomial into `out` (buffers
    /// reused).
    ///
    /// Coefficient `j` of the input lands at position `j·g mod 2N`, with a
    /// sign flip when the exponent wraps past `N` (because `X^N = -1`).
    /// For odd `g` the map `j ↦ j·g mod 2N` sends the `N` input indices to
    /// `N` distinct output slots (two inputs can never collide `mod N`:
    /// that would need `g·Δj ≡ N (mod 2N)`, impossible for odd `g` and
    /// `0 < Δj < N`), so each output coefficient is written exactly once.
    ///
    /// # Panics
    ///
    /// Panics if the polynomial is in the NTT domain or `g` is even
    /// (automorphisms of the 2N-th cyclotomic require odd exponents).
    pub fn automorphism_into(&self, g: usize, moduli: &[u64], out: &mut RnsPoly) {
        assert_eq!(
            self.domain,
            Domain::Coeff,
            "automorphism implemented in coefficient domain"
        );
        assert_eq!(moduli.len(), self.residues.len(), "one modulus per level");
        assert!(g % 2 == 1, "Galois exponent must be odd");
        let n = self.n;
        let two_n = 2 * n;
        out.reshape(n, self.residues.len(), Domain::Coeff);
        // The scatter through `j·g mod 2N` defeats lane unrolling; this
        // kernel stays scalar.
        par::for_each_indexed(&mut out.residues, par::grain_linear(n), |i, dst| {
            let q = moduli[i];
            for (j, &c) in self.residues[i].iter().enumerate() {
                let e = (j * g) % two_n;
                if e < n {
                    dst[e] = c;
                } else {
                    dst[e - n] = neg_mod(c, q);
                }
            }
        });
    }

    /// Allocating wrapper around [`RnsPoly::automorphism_into`].
    pub fn automorphism(&self, g: usize, moduli: &[u64]) -> RnsPoly {
        let mut out = RnsPoly::zero(self.n, self.residues.len(), Domain::Coeff);
        self.automorphism_into(g, moduli, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ntt::negacyclic_mul_naive;
    use crate::par::{with_dispatch_threshold, with_parallelism, Parallelism};
    use crate::prime::generate_ntt_primes;
    use crate::rns::RnsBasis;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn basis(n: usize, l: usize) -> RnsBasis {
        RnsBasis::new(n, generate_ntt_primes(30, n, l))
    }

    fn random_poly(b: &RnsBasis, rng: &mut StdRng) -> RnsPoly {
        let res = b
            .moduli()
            .iter()
            .map(|&q| (0..b.degree()).map(|_| rng.gen_range(0..q)).collect())
            .collect();
        RnsPoly::from_residues(res, Domain::Coeff)
    }

    fn tables(b: &RnsBasis) -> Vec<&NttTable> {
        b.tables().iter().collect()
    }

    #[test]
    fn zero_is_additive_identity() {
        let b = basis(32, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let p = random_poly(&b, &mut rng);
        let mut sum = p.clone();
        sum.add_assign(&RnsPoly::zero(32, 2, Domain::Coeff), b.moduli());
        assert_eq!(sum, p);
    }

    #[test]
    fn add_then_sub_roundtrips() {
        let b = basis(32, 3);
        let mut rng = StdRng::seed_from_u64(2);
        let p = random_poly(&b, &mut rng);
        let q = random_poly(&b, &mut rng);
        let mut r = p.clone();
        r.add_assign(&q, b.moduli());
        r.sub_assign(&q, b.moduli());
        assert_eq!(r, p);
    }

    #[test]
    fn negation_cancels() {
        let b = basis(32, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let p = random_poly(&b, &mut rng);
        let mut neg = p.clone();
        neg.neg_assign(b.moduli());
        let mut sum = p;
        sum.add_assign(&neg, b.moduli());
        assert_eq!(sum, RnsPoly::zero(32, 2, Domain::Coeff));
    }

    #[test]
    fn ntt_product_matches_naive_per_component() {
        let b = basis(16, 2);
        let mut rng = StdRng::seed_from_u64(4);
        let p = random_poly(&b, &mut rng);
        let q = random_poly(&b, &mut rng);

        let expected: Vec<Vec<u64>> = (0..b.len())
            .map(|i| negacyclic_mul_naive(p.component(i), q.component(i), b.moduli()[i]))
            .collect();

        let mut fp = p.clone();
        let mut fq = q.clone();
        fp.to_ntt(&tables(&b));
        fq.to_ntt(&tables(&b));
        fp.mul_pointwise_assign(&fq, b.moduli());
        fp.to_coeff(&tables(&b));
        for (i, e) in expected.iter().enumerate() {
            assert_eq!(fp.component(i), &e[..], "component {i}");
        }
    }

    #[test]
    fn domain_conversions_are_inverses_and_idempotent() {
        let b = basis(64, 2);
        let mut rng = StdRng::seed_from_u64(5);
        let p = random_poly(&b, &mut rng);
        let mut x = p.clone();
        x.to_coeff(&tables(&b)); // no-op
        assert_eq!(x, p);
        x.to_ntt(&tables(&b));
        x.to_ntt(&tables(&b)); // no-op
        x.to_coeff(&tables(&b));
        assert_eq!(x, p);
    }

    #[test]
    #[should_panic(expected = "needs NTT domain")]
    fn pointwise_in_coeff_domain_panics() {
        let b = basis(16, 1);
        let mut p = RnsPoly::zero(16, 1, Domain::Coeff);
        let q = RnsPoly::zero(16, 1, Domain::Coeff);
        p.mul_pointwise_assign(&q, b.moduli());
    }

    #[test]
    #[should_panic(expected = "level mismatch")]
    fn mismatched_levels_panic() {
        let b = basis(16, 2);
        let mut p = RnsPoly::zero(16, 2, Domain::Coeff);
        let q = RnsPoly::zero(16, 1, Domain::Coeff);
        p.add_assign(&q, b.moduli());
    }

    #[test]
    fn automorphism_identity_is_noop() {
        let b = basis(16, 2);
        let mut rng = StdRng::seed_from_u64(6);
        let p = random_poly(&b, &mut rng);
        assert_eq!(p.automorphism(1, b.moduli()), p);
    }

    #[test]
    fn automorphism_composes() {
        // sigma_g1 then sigma_g2 equals sigma_{g1*g2 mod 2N}
        let b = basis(16, 1);
        let mut rng = StdRng::seed_from_u64(7);
        let p = random_poly(&b, &mut rng);
        let two_n = 32;
        let (g1, g2) = (5usize, 7usize);
        let once = p.automorphism(g1, b.moduli()).automorphism(g2, b.moduli());
        let combined = p.automorphism((g1 * g2) % two_n, b.moduli());
        assert_eq!(once, combined);
    }

    #[test]
    fn automorphism_respects_ring_relation() {
        // On X (coefficient 1 at position 1), sigma_g gives X^g.
        let b = basis(8, 1);
        let q = b.moduli()[0];
        let mut p = RnsPoly::zero(8, 1, Domain::Coeff);
        p.component_mut(0)[1] = 1;
        let g = 9; // X -> X^9 = X^{9-8} * X^8 = -X
        let r = p.automorphism(g, b.moduli());
        assert_eq!(r.component(0)[1], q - 1, "X^9 = -X in degree-8 ring");
    }

    #[test]
    fn drop_and_push_component() {
        let b = basis(16, 3);
        let mut rng = StdRng::seed_from_u64(8);
        let p = random_poly(&b, &mut rng);
        let mut q = p.clone();
        let last = q.drop_last_component();
        assert_eq!(q.level_count(), 2);
        q.push_component(last);
        assert_eq!(q, p);
    }

    #[test]
    fn mul_pointwise_into_matches_assign() {
        let b = basis(32, 3);
        let mut rng = StdRng::seed_from_u64(9);
        let mut p = random_poly(&b, &mut rng);
        let mut q = random_poly(&b, &mut rng);
        p.to_ntt(&tables(&b));
        q.to_ntt(&tables(&b));

        let mut expected = p.clone();
        expected.mul_pointwise_assign(&q, b.moduli());

        // Scratch deliberately starts with the wrong shape and stale data.
        let mut out = RnsPoly::zero(8, 1, Domain::Coeff);
        out.component_mut(0)[0] = 12345;
        p.mul_pointwise_into(&q, b.moduli(), &mut out);
        assert_eq!(out, expected);
    }

    #[test]
    fn add_mul_pointwise_matches_clone_based_path() {
        let b = basis(32, 2);
        let mut rng = StdRng::seed_from_u64(10);
        let mut acc = random_poly(&b, &mut rng);
        let mut a = random_poly(&b, &mut rng);
        let mut bb = random_poly(&b, &mut rng);
        acc.to_ntt(&tables(&b));
        a.to_ntt(&tables(&b));
        bb.to_ntt(&tables(&b));

        let mut expected = acc.clone();
        let mut t = a.clone();
        t.mul_pointwise_assign(&bb, b.moduli());
        expected.add_assign(&t, b.moduli());

        acc.add_mul_pointwise(&a, &bb, b.moduli());
        assert_eq!(acc, expected);
    }

    #[test]
    fn add_mul_pointwise_select_matches_select_components() {
        let b = basis(16, 2);
        let big = basis(16, 4);
        let mut rng = StdRng::seed_from_u64(11);
        let mut acc = random_poly(&b, &mut rng);
        let mut a = random_poly(&b, &mut rng);
        let mut key = random_poly(&big, &mut rng);
        acc.to_ntt(&tables(&b));
        a.to_ntt(&tables(&b));
        key.to_ntt(&tables(&big));
        let indices = [1usize, 3usize];

        let mut expected = acc.clone();
        let mut t = a.clone();
        t.mul_pointwise_assign(&key.select_components(&indices), b.moduli());
        expected.add_assign(&t, b.moduli());

        acc.add_mul_pointwise_select(&a, &key, &indices, b.moduli());
        assert_eq!(acc, expected);
    }

    #[test]
    fn automorphism_into_reuses_dirty_scratch() {
        let b = basis(16, 2);
        let mut rng = StdRng::seed_from_u64(12);
        let p = random_poly(&b, &mut rng);
        let mut out = random_poly(&b, &mut rng); // stale contents
        p.automorphism_into(5, b.moduli(), &mut out);
        assert_eq!(out, p.automorphism(5, b.moduli()));
    }

    #[test]
    fn copy_from_and_reshape_reuse_buffers() {
        let b = basis(16, 3);
        let mut rng = StdRng::seed_from_u64(13);
        let p = random_poly(&b, &mut rng);
        let mut dst = RnsPoly::zero(64, 1, Domain::Ntt);
        dst.copy_from(&p);
        assert_eq!(dst, p);
        dst.reshape_zeroed(16, 2, Domain::Coeff);
        assert_eq!(dst, RnsPoly::zero(16, 2, Domain::Coeff));
    }

    #[test]
    fn mul_scalar_reduces_unnormalised_scalars() {
        let b = basis(16, 2);
        let mut rng = StdRng::seed_from_u64(14);
        let p = random_poly(&b, &mut rng);
        let qs = b.moduli();
        // Scalars at or above the modulus must behave as their residue.
        let raw: Vec<u64> = qs.iter().map(|&q| q + 3).collect();
        let reduced: Vec<u64> = qs.iter().map(|_| 3u64).collect();
        let mut x = p.clone();
        let mut y = p.clone();
        x.mul_scalar_assign(&raw, qs);
        y.mul_scalar_assign(&reduced, qs);
        assert_eq!(x, y);
    }

    #[test]
    fn threaded_kernels_match_serial_bit_for_bit() {
        let b = basis(64, 3);
        let mut rng = StdRng::seed_from_u64(15);
        let p = random_poly(&b, &mut rng);
        let q = random_poly(&b, &mut rng);
        // Threshold 0 defeats the grain guard so the threaded arm
        // genuinely spawns workers even for this tiny degree.
        let run = |mode, threshold| {
            with_dispatch_threshold(threshold, || {
                with_parallelism(mode, || {
                    let mut x = p.clone();
                    let mut y = q.clone();
                    x.to_ntt(&tables(&b));
                    y.to_ntt(&tables(&b));
                    let mut z = x.clone();
                    z.mul_pointwise_assign(&y, b.moduli());
                    z.add_mul_pointwise(&x, &y, b.moduli());
                    z.to_coeff(&tables(&b));
                    let rot = z.automorphism(5, b.moduli());
                    z.add_assign(&rot, b.moduli());
                    z.neg_assign(b.moduli());
                    z
                })
            })
        };
        assert_eq!(
            run(Parallelism::Serial, u64::MAX),
            run(Parallelism::Threads(3), 0)
        );
    }
}

//! Batch throughput simulation.
//!
//! The paper optimizes single-image latency (LoLa's metric). A deployed
//! service also cares about throughput: with inter-layer buffer reuse,
//! consecutive images can flow through the layer pipeline so that image
//! `k+1` occupies a layer as soon as image `k` leaves it. Steady-state
//! throughput is then bounded by the slowest layer, while single-image
//! latency stays the sum of all layers.

use crate::simulator::SimReport;

/// Throughput summary of a batch run over one design.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputReport {
    /// Batch size simulated.
    pub batch: usize,
    /// Wall-clock seconds for the whole batch.
    pub batch_seconds: f64,
    /// Achieved images per second.
    pub images_per_sec: f64,
    /// Single-image latency (unchanged by batching).
    pub latency_s: f64,
    /// The pipeline-bound upper limit on throughput.
    pub steady_state_images_per_sec: f64,
}

/// Derives batch throughput from a single-image simulation, assuming
/// layer-level pipelining across consecutive images.
///
/// Batch time = fill (one full latency) + `(batch - 1) ×` bottleneck
/// layer time.
///
/// # Panics
///
/// Panics if `batch` is zero.
pub fn batch_throughput(sim: &SimReport, batch: usize) -> ThroughputReport {
    assert!(batch > 0, "batch must be at least 1");
    let bottleneck = sim.bottleneck().seconds;
    let batch_seconds = sim.total_seconds + (batch as f64 - 1.0) * bottleneck;
    ThroughputReport {
        batch,
        batch_seconds,
        images_per_sec: batch as f64 / batch_seconds,
        latency_s: sim.total_seconds,
        steady_state_images_per_sec: 1.0 / bottleneck,
    }
}

/// Event-driven verification of the pipeline formula: schedules every
/// (image, layer) pair with the dependency `start = max(prev layer of
/// this image, this layer of the previous image)` and returns the batch
/// makespan in seconds.
pub fn simulate_batch_pipeline(sim: &SimReport, batch: usize) -> f64 {
    assert!(batch > 0, "batch must be at least 1");
    let times: Vec<f64> = sim.layers.iter().map(|l| l.seconds).collect();
    let mut prev_image_finish = vec![0.0f64; times.len()];
    let mut makespan = 0.0f64;
    for _ in 0..batch {
        let mut t = 0.0f64;
        for (i, &dt) in times.iter().enumerate() {
            t = t.max(prev_image_finish[i]) + dt;
            prev_image_finish[i] = t;
        }
        makespan = t;
    }
    makespan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::simulate;
    use fxhenn_dse::design::DesignPoint;
    use fxhenn_hw::FpgaDevice;
    use fxhenn_nn::{fxhenn_mnist, lower_network};

    fn sim() -> SimReport {
        let prog = lower_network(&fxhenn_mnist(1), 8192, 7);
        simulate(&prog, &DesignPoint::minimal(), &FpgaDevice::acu9eg(), 30)
    }

    #[test]
    fn batch_one_equals_latency() {
        let s = sim();
        let t = batch_throughput(&s, 1);
        assert!((t.batch_seconds - s.total_seconds).abs() < 1e-12);
        assert!((t.images_per_sec - 1.0 / s.total_seconds).abs() < 1e-9);
    }

    #[test]
    fn throughput_approaches_steady_state_with_batch() {
        let s = sim();
        let t1 = batch_throughput(&s, 1);
        let t16 = batch_throughput(&s, 16);
        let t256 = batch_throughput(&s, 256);
        assert!(t16.images_per_sec > t1.images_per_sec);
        assert!(t256.images_per_sec > t16.images_per_sec);
        assert!(t256.images_per_sec <= t256.steady_state_images_per_sec);
        // Within 20% of the asymptote at batch 256.
        assert!(
            t256.images_per_sec > 0.8 * t256.steady_state_images_per_sec,
            "{} vs {}",
            t256.images_per_sec,
            t256.steady_state_images_per_sec
        );
    }

    #[test]
    fn latency_is_batch_invariant() {
        let s = sim();
        for b in [1usize, 4, 64] {
            assert_eq!(batch_throughput(&s, b).latency_s, s.total_seconds);
        }
    }

    #[test]
    #[should_panic(expected = "batch must be at least 1")]
    fn zero_batch_rejected() {
        batch_throughput(&sim(), 0);
    }

    #[test]
    fn event_simulation_matches_pipeline_formula_exactly() {
        // For a linear pipeline, makespan = fill + (B-1) x bottleneck —
        // the event schedule must reproduce the closed form.
        let s = sim();
        for batch in [1usize, 2, 7, 32, 100] {
            let event = simulate_batch_pipeline(&s, batch);
            let formula = batch_throughput(&s, batch).batch_seconds;
            assert!(
                (event - formula).abs() < 1e-9,
                "batch {batch}: event {event} vs formula {formula}"
            );
        }
    }
}

//! Text rendering of design reports, shared by the examples and the
//! table-regeneration benches.

use crate::flow::DesignReport;
use fxhenn_hw::{FpgaDevice, OpClass};

/// Formats a fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}"))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Renders the per-layer latency/BRAM summary of a report.
pub fn layer_table(report: &DesignReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<8} {:>6} {:>12} {:>12} {:>10}\n",
        "Layer", "class", "HOPs", "latency(s)", "BRAM"
    ));
    for (plan, sim) in report.program.layers.iter().zip(&report.sim.layers) {
        out.push_str(&format!(
            "{:<8} {:>6} {:>12} {:>12.4} {:>10}\n",
            plan.name,
            plan.class.to_string(),
            plan.hop_count(),
            sim.seconds,
            sim.bram_demand,
        ));
    }
    out
}

/// Renders the chosen module configuration of a report (the Fig. 10
/// style intra/inter-parallelism listing).
pub fn module_table(report: &DesignReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>6} {:>8} {:>8} {:>8}\n",
        "Module", "nc", "intra", "inter", "DSP"
    ));
    for class in OpClass::ALL {
        let cfg = report.design.point.modules.get(class);
        let dsp = fxhenn_hw::HeOpModule::new(class, cfg).dsp_usage();
        out.push_str(&format!(
            "{:<12} {:>6} {:>8} {:>8} {:>8}\n",
            class.to_string(),
            cfg.nc_ntt,
            cfg.p_intra,
            cfg.p_inter,
            dsp
        ));
    }
    out
}

/// Renders the headline summary (latency, resources, security).
pub fn summary(report: &DesignReport, device: &FpgaDevice) -> String {
    format!(
        "{net} on {dev}: {lat:.3} s/inference | DSP {dsp}/{dsp_cap} ({dsp_pct:.1}%) | \
         peak BRAM {bram} blocks | {hops} HOPs ({ks} KS) | {sec} | {pts} design points",
        net = report.network_name,
        dev = report.device_name,
        lat = report.latency_s(),
        dsp = report.design.eval.dsp_used,
        dsp_cap = device.dsp_slices(),
        dsp_pct = report.design.eval.dsp_used as f64 / device.dsp_slices() as f64 * 100.0,
        bram = report.design.eval.bram_peak,
        hops = report.program.hop_count(),
        ks = report.program.key_switch_count(),
        sec = report.security,
        pts = report.points_explored,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::generate_accelerator;
    use fxhenn_ckks::CkksParams;
    use fxhenn_nn::fxhenn_mnist;

    fn sample_report() -> (DesignReport, FpgaDevice) {
        let device = FpgaDevice::acu9eg();
        let report = generate_accelerator(
            &fxhenn_mnist(1),
            &CkksParams::fxhenn_mnist(),
            &device,
        )
        .expect("feasible");
        (report, device)
    }

    #[test]
    fn tables_render_all_layers_and_modules() {
        let (report, device) = sample_report();
        let lt = layer_table(&report);
        for name in ["Cnv1", "Act1", "Fc1", "Act2", "Fc2"] {
            assert!(lt.contains(name), "layer table misses {name}");
        }
        let mt = module_table(&report);
        for m in ["PCmult", "Rescale", "KeySwitch"] {
            assert!(mt.contains(m), "module table misses {m}");
        }
        let s = summary(&report, &device);
        assert!(s.contains("FxHENN-MNIST"));
        assert!(s.contains("ACU9EG"));
        assert!(s.contains("128-bit"));
    }

    #[test]
    fn row_right_aligns_cells() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }
}

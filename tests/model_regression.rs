//! Golden regression tests: pins the reproduction's key derived numbers
//! so that future changes to calibration, lowering or DSE cannot drift
//! silently. Every value here was cross-checked against the paper in
//! EXPERIMENTS.md when it was recorded; if an intentional model change
//! moves one, update the constant *and* EXPERIMENTS.md together.

use fxhenn::ckks::CkksParams;
use fxhenn::dse::explore_default;
use fxhenn::hw::{HeOpModule, ModuleConfig, OpClass};
use fxhenn::nn::{fxhenn_cifar10, fxhenn_mnist, lower_network};
use fxhenn::FpgaDevice;

#[test]
fn golden_mnist_workload_counts() {
    let prog = lower_network(&fxhenn_mnist(1), 8192, 7);
    assert_eq!(prog.hop_count(), 1282);
    assert_eq!(prog.key_switch_count(), 298);
    let per_layer: Vec<(usize, usize)> = prog
        .layers
        .iter()
        .map(|l| (l.hop_count(), l.key_switch_count()))
        .collect();
    assert_eq!(
        per_layer,
        [(75, 0), (3, 1), (579, 252), (75, 25), (550, 20)],
        "per-layer (HOP, KS) counts"
    );
}

#[test]
fn golden_cifar10_workload_counts() {
    let prog = lower_network(&fxhenn_cifar10(1), 16384, 7);
    assert_eq!(prog.hop_count(), 99_429);
    assert_eq!(prog.key_switch_count(), 39_322);
    // Cnv2 dominates and consolidates to one ciphertext.
    let cnv2 = prog.layer("Cnv2").unwrap();
    assert!(cnv2.hop_count() > 80_000);
    assert_eq!(cnv2.output_cts, 1);
}

#[test]
fn golden_module_latency_cycles() {
    // Table I anchors at N = 8192, L = 7 (cycles at 250 MHz).
    let at = |class, nc| {
        HeOpModule::new(
            class,
            ModuleConfig {
                nc_ntt: nc,
                p_intra: 1,
                p_inter: 1,
            },
        )
        .op_latency_cycles(7, 8192)
    };
    assert_eq!(at(OpClass::Add, 2), 57_344); // 0.229 ms
    assert_eq!(at(OpClass::KeySwitch, 2), 792_064); // 3.168 ms
    assert_eq!(at(OpClass::KeySwitch, 8), 198_016); // 0.792 ms
    assert_eq!(at(OpClass::Rescale, 2), 293_888); // 1.176 ms
}

#[test]
fn golden_dse_choices_are_stable() {
    let prog = lower_network(&fxhenn_mnist(1), 8192, 7);
    let best = explore_default(&prog, &FpgaDevice::acu9eg(), 30)
        .best
        .expect("feasible");
    // The chosen KeySwitch configuration on ACU9EG.
    let ks = best.point.modules.get(OpClass::KeySwitch);
    assert_eq!((ks.nc_ntt, ks.p_intra, ks.p_inter), (8, 2, 1));
    // And the headline latency, pinned to the millisecond.
    let ms = (best.eval.latency_s * 1000.0).round() as i64;
    assert_eq!(ms, 210, "MNIST/ACU9EG latency drifted: {ms} ms");
    assert!(best.eval.fully_buffered);
}

#[test]
fn golden_parameter_presets() {
    let m = CkksParams::fxhenn_mnist();
    assert_eq!(
        (m.degree(), m.levels(), m.prime_bits(), m.total_modulus_bits()),
        (8192, 7, 30, 210)
    );
    let c = CkksParams::fxhenn_cifar10();
    assert_eq!(
        (c.degree(), c.levels(), c.prime_bits(), c.total_modulus_bits()),
        (16384, 7, 36, 252)
    );
}

#[test]
fn golden_headline_latencies_within_band() {
    // Broader than the per-ms pin above: all four Table VII rows must
    // stay inside their recorded bands (ours vs paper within 2x, see
    // EXPERIMENTS.md).
    let mnist = fxhenn_mnist(1);
    let cifar = fxhenn_cifar10(1);
    let cases: [(&fxhenn::nn::Network, CkksParams, FpgaDevice, f64, f64); 4] = [
        (&mnist, CkksParams::fxhenn_mnist(), FpgaDevice::acu9eg(), 0.15, 0.30),
        (&mnist, CkksParams::fxhenn_mnist(), FpgaDevice::acu15eg(), 0.09, 0.20),
        (&cifar, CkksParams::fxhenn_cifar10(), FpgaDevice::acu9eg(), 250.0, 550.0),
        (&cifar, CkksParams::fxhenn_cifar10(), FpgaDevice::acu15eg(), 60.0, 140.0),
    ];
    for (net, params, device, lo, hi) in cases {
        let r = fxhenn::generate_accelerator(net, &params, &device).expect("feasible");
        assert!(
            (lo..=hi).contains(&r.latency_s()),
            "{} on {}: {:.3} s outside [{lo}, {hi}]",
            net.name(),
            device.name(),
            r.latency_s()
        );
    }
}

//! RNS-CKKS parameter sets.
//!
//! A parameter set fixes the ring degree `N`, the modulus chain (number of
//! levels `L` and per-prime bit width), the key-switching special prime
//! width and the default encoding scale. The two presets used throughout
//! the paper's evaluation are provided as constructors:
//!
//! * [`CkksParams::fxhenn_mnist`] — `N = 8192`, `L = 7`, 30-bit primes
//!   (`log Q = 210`, 128-bit security);
//! * [`CkksParams::fxhenn_cifar10`] — `N = 16384`, `L = 7`, 36-bit primes
//!   (`log Q = 252`, 192-bit security).

use crate::security::{estimate_security, SecurityLevel};

/// Errors arising when validating a parameter set.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamsError {
    /// Ring degree is not a power of two, or too small.
    BadDegree(usize),
    /// Level count must be at least 1.
    NoLevels,
    /// Prime bit width outside the supported 14..=60 range.
    BadPrimeBits(u32),
    /// Special prime width outside the supported 14..=60 range.
    BadSpecialBits(u32),
    /// Scale must be positive and finite.
    BadScale(f64),
    /// Key-switch digit count outside `1..=L`.
    BadDigits {
        /// Requested digit count.
        dnum: usize,
        /// Available levels.
        levels: usize,
    },
}

impl std::fmt::Display for ParamsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamsError::BadDegree(n) => {
                write!(f, "ring degree {n} must be a power of two of at least 8")
            }
            ParamsError::NoLevels => f.write_str("parameter set needs at least one level"),
            ParamsError::BadPrimeBits(b) => write!(f, "prime width {b} outside 14..=60"),
            ParamsError::BadSpecialBits(b) => {
                write!(f, "special prime width {b} outside 14..=60")
            }
            ParamsError::BadScale(s) => write!(f, "scale {s} must be positive and finite"),
            ParamsError::BadDigits { dnum, levels } => {
                write!(f, "key-switch digit count {dnum} outside 1..={levels}")
            }
        }
    }
}

impl std::error::Error for ParamsError {}

/// A validated RNS-CKKS parameter set.
#[derive(Debug, Clone, PartialEq)]
pub struct CkksParams {
    n: usize,
    levels: usize,
    prime_bits: u32,
    special_bits: u32,
    scale: f64,
    ks_digits: usize,
}

impl CkksParams {
    /// Creates a parameter set.
    ///
    /// `n` — ring degree (power of two); `levels` — number of RNS primes
    /// `L` in the ciphertext modulus; `prime_bits` — width of each
    /// coefficient prime; `special_bits` — width of the key-switching
    /// special prime (usually wider than `prime_bits` to suppress
    /// key-switching noise).
    ///
    /// # Errors
    ///
    /// Returns a [`ParamsError`] if any field is out of range.
    pub fn new(
        n: usize,
        levels: usize,
        prime_bits: u32,
        special_bits: u32,
    ) -> Result<Self, ParamsError> {
        if !n.is_power_of_two() || n < 8 {
            return Err(ParamsError::BadDegree(n));
        }
        if levels == 0 {
            return Err(ParamsError::NoLevels);
        }
        if !(14..=60).contains(&prime_bits) {
            return Err(ParamsError::BadPrimeBits(prime_bits));
        }
        if !(14..=60).contains(&special_bits) {
            return Err(ParamsError::BadSpecialBits(special_bits));
        }
        Ok(Self {
            n,
            levels,
            prime_bits,
            special_bits,
            scale: (prime_bits as f64).exp2(),
            ks_digits: levels,
        })
    }

    /// Sets the number of key-switching digits `dnum` (default: one per
    /// prime, `dnum = L`). Smaller `dnum` groups several primes per
    /// digit — fewer, larger key components (HEAX-style hybrid key
    /// switching) at the cost of `ceil(L/dnum)` special primes instead
    /// of one.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError::BadDigits`] unless `1 <= dnum <= L`.
    pub fn with_key_switch_digits(mut self, dnum: usize) -> Result<Self, ParamsError> {
        if dnum == 0 || dnum > self.levels {
            return Err(ParamsError::BadDigits {
                dnum,
                levels: self.levels,
            });
        }
        self.ks_digits = dnum;
        Ok(self)
    }

    /// Overrides the default encoding scale (`2^prime_bits`).
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError::BadScale`] unless the scale is positive and
    /// finite.
    pub fn with_scale(mut self, scale: f64) -> Result<Self, ParamsError> {
        if !(scale.is_finite() && scale > 0.0) {
            return Err(ParamsError::BadScale(scale));
        }
        self.scale = scale;
        Ok(self)
    }

    /// The FxHENN-MNIST parameter preset: `N = 8192`, 30-bit `q_i`,
    /// `L = 7` (`log Q = 210`), 45-bit special prime.
    pub fn fxhenn_mnist() -> Self {
        Self::new(8192, 7, 30, 45).expect("preset is valid")
    }

    /// The FxHENN-CIFAR10 parameter preset: `N = 16384`, 36-bit `q_i`,
    /// `L = 7` (`log Q = 252`), 49-bit special prime.
    pub fn fxhenn_cifar10() -> Self {
        Self::new(16384, 7, 36, 49).expect("preset is valid")
    }

    /// A small insecure preset for fast functional tests: `N = 1024`.
    pub fn insecure_toy(levels: usize) -> Self {
        Self::new(1024, levels, 30, 45).expect("preset is valid")
    }

    /// Ring degree `N`.
    #[inline]
    pub fn degree(&self) -> usize {
        self.n
    }

    /// Number of plaintext slots (`N / 2`).
    #[inline]
    pub fn slot_count(&self) -> usize {
        self.n / 2
    }

    /// Number of coefficient primes `L`.
    #[inline]
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Width of each coefficient prime, in bits.
    #[inline]
    pub fn prime_bits(&self) -> u32 {
        self.prime_bits
    }

    /// Width of the key-switching special prime(s), in bits.
    #[inline]
    pub fn special_bits(&self) -> u32 {
        self.special_bits
    }

    /// Number of key-switching digits `dnum` (default `L`).
    #[inline]
    pub fn key_switch_digits(&self) -> usize {
        self.ks_digits
    }

    /// Primes per key-switch digit (`ceil(L / dnum)`), which is also the
    /// number of special primes the context generates.
    #[inline]
    pub fn digit_group_size(&self) -> usize {
        self.levels.div_ceil(self.ks_digits)
    }

    /// Default encoding scale Δ.
    #[inline]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Nominal ciphertext modulus width `log2 Q ≈ L · prime_bits`.
    #[inline]
    pub fn total_modulus_bits(&self) -> u32 {
        self.levels as u32 * self.prime_bits
    }

    /// Classical security of this set (counting `Q` only, as the paper's
    /// Table VII does).
    pub fn security(&self) -> SecurityLevel {
        estimate_security(self.n, self.total_modulus_bits())
    }

    /// Size in bytes of one freshly encrypted ciphertext (two polynomials
    /// of `L` residues of `N` words), the figure behind the paper's
    /// "5–6 orders of magnitude" ciphertext expansion claim.
    pub fn fresh_ciphertext_bytes(&self) -> usize {
        2 * self.levels * self.n * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_parameters() {
        let m = CkksParams::fxhenn_mnist();
        assert_eq!(m.degree(), 8192);
        assert_eq!(m.levels(), 7);
        assert_eq!(m.total_modulus_bits(), 210);
        assert_eq!(m.security(), SecurityLevel::Bits128);
        assert_eq!(m.slot_count(), 4096);

        let c = CkksParams::fxhenn_cifar10();
        assert_eq!(c.degree(), 16384);
        assert_eq!(c.total_modulus_bits(), 252);
        assert_eq!(c.security(), SecurityLevel::Bits192);
    }

    #[test]
    fn default_scale_is_two_to_prime_bits() {
        let p = CkksParams::new(1024, 3, 30, 45).unwrap();
        assert_eq!(p.scale(), (2f64).powi(30));
        let p = p.with_scale(1e9).unwrap();
        assert_eq!(p.scale(), 1e9);
    }

    #[test]
    fn rejects_invalid_fields() {
        assert_eq!(
            CkksParams::new(1000, 3, 30, 45),
            Err(ParamsError::BadDegree(1000))
        );
        assert_eq!(CkksParams::new(1024, 0, 30, 45), Err(ParamsError::NoLevels));
        assert_eq!(
            CkksParams::new(1024, 3, 61, 45),
            Err(ParamsError::BadPrimeBits(61))
        );
        assert_eq!(
            CkksParams::new(1024, 3, 30, 13),
            Err(ParamsError::BadSpecialBits(13))
        );
        assert!(CkksParams::insecure_toy(3).with_scale(f64::NAN).is_err());
        assert!(CkksParams::insecure_toy(3).with_scale(-2.0).is_err());
    }

    #[test]
    fn digit_configuration_defaults_and_validates() {
        let p = CkksParams::insecure_toy(6);
        assert_eq!(p.key_switch_digits(), 6);
        assert_eq!(p.digit_group_size(), 1);
        let p2 = p.clone().with_key_switch_digits(2).unwrap();
        assert_eq!(p2.key_switch_digits(), 2);
        assert_eq!(p2.digit_group_size(), 3);
        let p3 = p.clone().with_key_switch_digits(4).unwrap();
        assert_eq!(p3.digit_group_size(), 2);
        assert!(matches!(
            p.clone().with_key_switch_digits(0),
            Err(ParamsError::BadDigits { .. })
        ));
        assert!(p.with_key_switch_digits(7).is_err());
    }

    #[test]
    fn ciphertext_size_shows_expansion() {
        // A fresh MNIST ciphertext is ~917 KiB for a 4096-value message:
        // 5-6 orders of magnitude over the raw pixels, as the paper notes.
        let m = CkksParams::fxhenn_mnist();
        assert_eq!(m.fresh_ciphertext_bytes(), 2 * 7 * 8192 * 8);
    }

    #[test]
    fn errors_display_reasonably() {
        let e = CkksParams::new(1000, 3, 30, 45).unwrap_err();
        assert!(e.to_string().contains("power of two"));
    }
}

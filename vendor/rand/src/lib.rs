//! Offline stand-in for the slice of the `rand` 0.8 API this workspace
//! uses: `Rng::{gen, gen_range}`, `SeedableRng::seed_from_u64` and
//! `rngs::StdRng`.
//!
//! The build environment has no route to a crates.io mirror, so the
//! workspace vendors this tiny, dependency-free implementation instead
//! of the real crate. Every consumer seeds explicitly (`seed_from_u64`),
//! so the only property that matters is a deterministic, well-mixed
//! stream — provided here by xoshiro256** seeded through SplitMix64.
//! It is NOT cryptographically secure; the reproduction uses it for
//! test vectors and (non-production) noise sampling only.

/// A source of randomness: the subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns a uniformly random value in `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the full bit stream
/// (the stand-in for `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<G: Rng + ?Sized>(rng: &mut G) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<G: Rng + ?Sized>(rng: &mut G) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<G: Rng + ?Sized>(rng: &mut G) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<G: Rng + ?Sized>(rng: &mut G) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<G: Rng + ?Sized>(rng: &mut G) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Maps 64 random bits onto [0, 1) with 53 bits of precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges a uniform value can be drawn from (the stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                // span == 0 encodes the full 2^64 domain (e.g. 1..u64::MAX+1
                // cannot occur for Range, so span is always nonzero here).
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// RNGs constructible from a seed (the subset of `rand::SeedableRng`
/// the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the standard way to seed xoshiro.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let u = rng.gen_range(3u64..17);
            assert!((3..17).contains(&u));
            let i = rng.gen_range(-1i64..=1);
            assert!((-1..=1).contains(&i));
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let n = rng.gen_range(0usize..5);
            assert!(n < 5);
        }
    }

    #[test]
    fn gen_produces_varied_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let seed: u64 = rng.gen();
        let byte: u8 = rng.gen();
        let more: u64 = rng.gen();
        assert_ne!(seed, more);
        let _ = byte;
    }
}

//! A tour of LoLa-style ciphertext packing: how a convolution collapses
//! into one PCmult/CCadd/Rescale loop (the paper's Listing 1), how a
//! dense layer becomes stacked rotate-and-sum rounds, and what each
//! choice costs in HE operations.
//!
//! Run with: `cargo run --release --example packing_tour`

use fxhenn::ckks::HeOpKind;
use fxhenn::nn::lowering::plan_dense;
use fxhenn::nn::packing::{conv_offset_pack, CtLayout};
use fxhenn::nn::{fxhenn_mnist, lower_network, Layer, Layout, Tensor};

fn main() {
    let net = fxhenn_mnist(42);
    let slots = 4096; // N = 8192

    // --- Offset packing of the first convolution ---
    println!("== Conv offset packing (Listing 1) ==");
    let Layer::Conv(conv) = &net.layers()[0].1 else {
        unreachable!("MNIST starts with a conv");
    };
    let image = Tensor::zeros(&[1, 29, 29]);
    let packed = conv_offset_pack(&image, conv, slots);
    println!(
        "kernel 5x5 -> {} offset ciphertexts per group, {} group(s)",
        packed[0].len(),
        packed.len()
    );
    println!(
        "each holds one input pixel per output position, replicated for {} maps",
        conv.out_channels
    );

    // --- The stacked dense plan for Fc1 ---
    println!();
    println!("== Stacked dense lowering (Fc1: 845 -> 100) ==");
    let plan = plan_dense(&Layout::SingleContig { n: 845 }, 100, slots);
    println!(
        "segment = {} slots (845 padded), copies = {}, rounds = {}",
        plan.seg, plan.copies, plan.rounds
    );
    println!(
        "stack shifts: {:?} (replicate input into {} copies)",
        plan.stack_shifts, plan.copies
    );
    println!(
        "rotate-and-sum shifts per round: {:?} ({} rotations)",
        plan.sum_shifts,
        plan.sum_shifts.len()
    );
    println!("consolidation: {}", plan.consolidate);

    // --- Segmented output layout ---
    println!();
    println!("== Output slot layout ==");
    let layout = CtLayout::segmented(100, plan.copies, plan.seg, slots);
    for v in [0usize, 1, 4, 5, 99] {
        let (ct, slot) = layout.placement(v);
        println!("  output {v:>2} -> ciphertext {ct}, slot {slot}");
    }

    // --- Full network HOP accounting ---
    println!();
    println!("== HE operation accounting (Table IV flavor) ==");
    let prog = lower_network(&net, 8192, 7);
    println!(
        "{:<6} {:>7} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "layer", "HOPs", "PCmult", "CCadd", "Rescale", "Rotate", "Relin"
    );
    for plan in &prog.layers {
        println!(
            "{:<6} {:>7} {:>8} {:>8} {:>8} {:>8} {:>8}",
            plan.name,
            plan.hop_count(),
            plan.trace.count_of(HeOpKind::PcMult),
            plan.trace.count_of(HeOpKind::CcAdd),
            plan.trace.count_of(HeOpKind::Rescale),
            plan.trace.count_of(HeOpKind::Rotate),
            plan.trace.count_of(HeOpKind::Relinearize),
        );
    }
    println!(
        "total: {} HOPs, {} KeySwitches (paper Table VII: 826 HOPs, 280 KS)",
        prog.hop_count(),
        prog.key_switch_count()
    );
}

//! Measured-vs-analytic attribution: the Table I validation loop, live.
//!
//! The paper validates its analytic per-module latency model against
//! measured runtimes. We reproduce that comparison continuously: every
//! instrumented run yields measured wall time per key (an `HeOpKind`
//! or a layer name) which is joined against the modeled cycle count
//! from `fxhenn_hw::modules` for the same design point.
//!
//! Measured time is CPU nanoseconds; modeled time is FPGA cycles — the
//! absolute scales are incomparable, so the join is in **share space**:
//! each key's fraction of total measured time versus its fraction of
//! total modeled cycles. The per-row model error is the difference in
//! percentage points; a kind the model says is 40 % of the workload
//! but measures at 55 % shows up as +15.

/// One row of the attribution join.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionRow {
    /// The join key (an op kind label or a layer name).
    pub key: String,
    /// Operations measured under this key.
    pub count: u64,
    /// Measured wall time, nanoseconds.
    pub measured_ns: u64,
    /// Modeled latency, accelerator cycles.
    pub modeled_cycles: u64,
    /// This key's share of total measured time, percent.
    pub measured_share_pct: f64,
    /// This key's share of total modeled cycles, percent.
    pub modeled_share_pct: f64,
    /// `measured_share_pct - modeled_share_pct` (percentage points):
    /// positive means the analytic model underweights this key.
    pub model_error_pct: f64,
}

/// Joins `(key, count, measured_ns, modeled_cycles)` entries into
/// share-space attribution rows. Input order is preserved.
#[must_use]
pub fn attribution_rows(entries: &[(String, u64, u64, u64)]) -> Vec<AttributionRow> {
    let total_ns: u64 = entries.iter().map(|e| e.2).sum();
    let total_cycles: u64 = entries.iter().map(|e| e.3).sum();
    let pct = |part: u64, total: u64| {
        if total == 0 {
            0.0
        } else {
            100.0 * part as f64 / total as f64
        }
    };
    entries
        .iter()
        .map(|(key, count, ns, cycles)| {
            let measured_share_pct = pct(*ns, total_ns);
            let modeled_share_pct = pct(*cycles, total_cycles);
            AttributionRow {
                key: key.clone(),
                count: *count,
                measured_ns: *ns,
                modeled_cycles: *cycles,
                measured_share_pct,
                modeled_share_pct,
                model_error_pct: measured_share_pct - modeled_share_pct,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_and_errors_add_up() {
        let rows = attribution_rows(&[
            ("CCmult".into(), 2, 600, 50),
            ("Rescale".into(), 2, 400, 50),
        ]);
        assert_eq!(rows.len(), 2);
        assert!((rows[0].measured_share_pct - 60.0).abs() < 1e-9);
        assert!((rows[0].modeled_share_pct - 50.0).abs() < 1e-9);
        assert!((rows[0].model_error_pct - 10.0).abs() < 1e-9);
        assert!((rows[1].model_error_pct + 10.0).abs() < 1e-9);
        let share_sum: f64 = rows.iter().map(|r| r.measured_share_pct).sum();
        assert!((share_sum - 100.0).abs() < 1e-9);
        let err_sum: f64 = rows.iter().map(|r| r.model_error_pct).sum();
        assert!(err_sum.abs() < 1e-9, "share-space errors sum to zero");
    }

    #[test]
    fn empty_totals_do_not_divide_by_zero() {
        let rows = attribution_rows(&[("x".into(), 0, 0, 0)]);
        assert_eq!(rows[0].measured_share_pct, 0.0);
        assert_eq!(rows[0].model_error_pct, 0.0);
    }
}

//! Calibration constants fitted against the paper's own module
//! measurements (Table I, ACU9EG, `N = 8192`, 30-bit primes, `L = 7`,
//! 250 MHz HLS clock).
//!
//! The derivation, per constant:
//!
//! * [`ELEM_LANES`]`= 2`: CCadd at 0.25 ms ⇒ `2·L·N / lanes` cycles =
//!   57 344 cycles ≈ 0.23 ms at 250 MHz.
//! * [`RESCALE_NTT_PASSES_PER_LEVEL`]`= 1.5`: Rescale at `nc = 2` is
//!   1.19 ms = 10.5 NTT passes ⇒ 1.5 per level at `L = 7` (an exact-RNS
//!   rescale does 2 transforms per level across its two polynomials, of
//!   which ~25% overlap with the elementwise stages in the pipeline).
//! * [`KS_NTT_PASSES_PER_LEVEL`]`= 4.25`: KeySwitch at `nc = 2` is
//!   3.17 ms = 29.75 NTT passes ⇒ 4.25 per level (digit lifts dominate;
//!   the paper's halving from `nc` 2→4→8 shows the op is purely
//!   NTT-bound, which this model reproduces exactly).
//! * DSP constants are taken from Table I directly: PCmult/CCmult 3.97 %
//!   of 2 520 = 100 slices; Rescale fits `40 + 36·nc` (112/184/328);
//!   KeySwitch is tabulated (254/479/721).
//! * [`LAYER_PIPELINE_OVERHEAD`]`= 2.8`: the per-layer latencies the
//!   paper reports (Table V, Fig. 7) sit a factor ~2.8 above the ideal
//!   steady-state pipeline product `#ops · PI` — pipeline fill/drain,
//!   plaintext streaming and HLS scheduling gaps. One global factor
//!   reproduces both the baseline and optimized layer latencies.
//! * Off-chip penalties: Table III measures Cnv1 at 15.9× and Fc1 at
//!   139.6× slowdown when all buffers spill to DRAM; these bound the
//!   linear stall model of the simulator.

use crate::modules::OpClass;

/// Parallel lanes of the elementwise basic modules (ModAdd/ModMult/
/// Barrett), Eq. 5's `p`.
pub const ELEM_LANES: usize = 2;

/// NTT passes per ciphertext level in one Rescale operation.
pub const RESCALE_NTT_PASSES_PER_LEVEL: f64 = 1.5;

/// Lanes of the rescale elementwise tail (subtract + multiply by
/// `q_last^{-1}`).
pub const RESCALE_ELEM_TAIL_LANES: usize = 8;

/// NTT passes per ciphertext level in one KeySwitch operation.
pub const KS_NTT_PASSES_PER_LEVEL: f64 = 4.25;

/// Ratio between measured per-layer latency and the ideal steady-state
/// pipeline product (fill/drain, streaming and scheduling overheads).
pub const LAYER_PIPELINE_OVERHEAD: f64 = 2.8;

/// Slowdown of an NKS layer running entirely from off-chip DRAM
/// (Table III, Cnv1: 0.334 s / 0.021 s).
pub const OFFCHIP_PENALTY_NKS: f64 = 15.9;

/// Slowdown of a KS layer running entirely from off-chip DRAM
/// (Table III, Fc1: 22.612 s / 0.162 s).
pub const OFFCHIP_PENALTY_KS: f64 = 139.6;

/// DSP usage of one module instance at `P_intra = P_inter = 1` (Eq. 7's
/// `Const_op^DSP`), from Table I.
///
/// # Panics
///
/// Panics if `nc` is not 1, 2, 4 or 8.
pub fn dsp_const(class: OpClass, nc: usize) -> usize {
    assert!(matches!(nc, 1 | 2 | 4 | 8), "nc_NTT must be 1, 2, 4 or 8");
    match class {
        OpClass::Add => 0,
        OpClass::PcMult | OpClass::CcMult => 100,
        OpClass::Rescale => 40 + 36 * nc,
        OpClass::KeySwitch => match nc {
            1 => 176,
            2 => 254,
            4 => 479,
            8 => 721,
            _ => unreachable!(),
        },
        // Fused composites instantiate the datapaths of the primitives
        // they embed: a sign stage needs the CCmult array plus the
        // rescale and key-switch cores; the matmul block adds the
        // PCmult mask array on top.
        OpClass::Sign => {
            dsp_const(OpClass::CcMult, nc)
                + dsp_const(OpClass::Rescale, nc)
                + dsp_const(OpClass::KeySwitch, nc)
        }
        OpClass::CtMatmul => {
            dsp_const(OpClass::PcMult, nc)
                + dsp_const(OpClass::CcMult, nc)
                + dsp_const(OpClass::Rescale, nc)
                + dsp_const(OpClass::KeySwitch, nc)
        }
    }
}

/// The paper's Table I, pinned: `(class, nc, dsp_pct, bram_pct,
/// latency_ms)` on ACU9EG. Used by the Table I bench to print
/// paper-vs-model side by side.
pub const PAPER_TABLE1: &[(OpClass, usize, f64, f64, f64)] = &[
    (OpClass::Add, 2, 0.00, 10.53, 0.25),
    (OpClass::PcMult, 2, 3.97, 10.53, 0.25),
    (OpClass::CcMult, 2, 3.97, 15.79, 0.25),
    (OpClass::Rescale, 2, 4.44, 10.53, 1.19),
    (OpClass::Rescale, 4, 7.30, 10.53, 0.68),
    (OpClass::Rescale, 8, 13.01, 21.05, 0.34),
    (OpClass::KeySwitch, 2, 10.08, 35.09, 3.17),
    (OpClass::KeySwitch, 4, 19.01, 35.09, 1.60),
    (OpClass::KeySwitch, 8, 28.61, 70.18, 0.81),
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modules::{HeOpModule, ModuleConfig};

    const N: usize = 8192;
    const L: usize = 7;
    const CLOCK_MHZ: f64 = 250.0;

    fn latency_ms(class: OpClass, nc: usize) -> f64 {
        let m = HeOpModule::new(
            class,
            ModuleConfig {
                nc_ntt: nc,
                p_intra: 1,
                p_inter: 1,
            },
        );
        m.op_latency_cycles(L, N) as f64 / (CLOCK_MHZ * 1e3)
    }

    #[test]
    fn model_reproduces_table1_latencies() {
        // Every modeled latency within 25% of the paper's measurement.
        for &(class, nc, _dsp, _bram, paper_ms) in PAPER_TABLE1 {
            let ours = latency_ms(class, nc);
            let rel = (ours - paper_ms).abs() / paper_ms;
            assert!(
                rel < 0.25,
                "{class:?} nc={nc}: model {ours:.3} ms vs paper {paper_ms} ms ({:.0}% off)",
                rel * 100.0
            );
        }
    }

    #[test]
    fn model_matches_keyswitch_latency_tightly() {
        // The KS fit is within 3% at every nc.
        for (nc, paper) in [(2usize, 3.17f64), (4, 1.60), (8, 0.81)] {
            let ours = latency_ms(OpClass::KeySwitch, nc);
            assert!(
                (ours - paper).abs() / paper < 0.03,
                "nc={nc}: {ours:.3} vs {paper}"
            );
        }
    }

    #[test]
    fn dsp_constants_match_table1_percentages() {
        let total = 2520.0;
        let expect = [
            (OpClass::PcMult, 2usize, 3.97f64),
            (OpClass::Rescale, 2, 4.44),
            (OpClass::Rescale, 4, 7.30),
            (OpClass::Rescale, 8, 13.01),
            (OpClass::KeySwitch, 2, 10.08),
            (OpClass::KeySwitch, 4, 19.01),
            (OpClass::KeySwitch, 8, 28.61),
        ];
        for (class, nc, pct) in expect {
            let ours = dsp_const(class, nc) as f64 / total * 100.0;
            assert!(
                (ours - pct).abs() < 0.6,
                "{class:?} nc={nc}: {ours:.2}% vs paper {pct}%"
            );
        }
    }

    #[test]
    fn offchip_penalties_match_table3_ratios() {
        assert!((OFFCHIP_PENALTY_NKS - 0.334 / 0.021).abs() < 0.1);
        assert!((OFFCHIP_PENALTY_KS - 22.612 / 0.162).abs() < 0.5);
    }

    #[test]
    #[should_panic(expected = "nc_NTT must be")]
    fn dsp_const_rejects_bad_nc() {
        dsp_const(OpClass::KeySwitch, 3);
    }
}

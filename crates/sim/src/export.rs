//! Machine-readable exports of simulation and DSE results (CSV and
//! Markdown), for plotting the figures outside Rust.

use crate::simulator::SimReport;
use fxhenn_dse::explore::ExploredPoint;
use fxhenn_hw::OpClass;

/// Escapes a CSV field (quotes fields containing separators).
fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Renders one CSV line.
pub fn csv_line(fields: &[String]) -> String {
    fields
        .iter()
        .map(|f| csv_field(f))
        .collect::<Vec<_>>()
        .join(",")
}

/// A per-layer CSV of a simulation report:
/// `layer,cycles,stall,seconds,bram_demand,bram_granted`.
pub fn sim_report_csv(report: &SimReport) -> String {
    let mut out = String::from("layer,cycles,stall,seconds,bram_demand,bram_granted\n");
    for l in &report.layers {
        out.push_str(&csv_line(&[
            l.name.clone(),
            l.cycles.to_string(),
            format!("{:.4}", l.stall),
            format!("{:.6}", l.seconds),
            l.bram_demand.to_string(),
            l.bram_granted.to_string(),
        ]));
        out.push('\n');
    }
    out.push_str(&format!(
        "TOTAL,,,{:.6},,\n",
        report.total_seconds
    ));
    out
}

/// A CSV of explored design points (the Fig. 9 scatter):
/// `latency_s,bram_peak,dsp,ks_nc,ks_intra,ks_inter,fully_buffered`.
pub fn dse_points_csv(points: &[ExploredPoint]) -> String {
    let mut out =
        String::from("latency_s,bram_peak,dsp,ks_nc,ks_intra,ks_inter,fully_buffered\n");
    for p in points {
        let ks = p.point.modules.get(OpClass::KeySwitch);
        out.push_str(&csv_line(&[
            format!("{:.6}", p.eval.latency_s),
            p.eval.bram_peak.to_string(),
            p.eval.dsp_used.to_string(),
            ks.nc_ntt.to_string(),
            ks.p_intra.to_string(),
            ks.p_inter.to_string(),
            p.eval.fully_buffered.to_string(),
        ]));
        out.push('\n');
    }
    out
}

/// Renders a Markdown table from headers and string rows.
///
/// # Panics
///
/// Panics if any row's width differs from the header width.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("| {} |\n", headers.join(" | ")));
    out.push_str(&format!(
        "|{}\n",
        headers.iter().map(|_| "---|").collect::<String>()
    ));
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row width mismatch");
        out.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::simulate;
    use fxhenn_dse::design::DesignPoint;
    use fxhenn_dse::explore_default;
    use fxhenn_hw::FpgaDevice;
    use fxhenn_nn::{fxhenn_mnist, lower_network};

    #[test]
    fn sim_csv_has_one_row_per_layer_plus_total() {
        let prog = lower_network(&fxhenn_mnist(1), 8192, 7);
        let sim = simulate(&prog, &DesignPoint::minimal(), &FpgaDevice::acu9eg(), 30);
        let csv = sim_report_csv(&sim);
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 1 + 5 + 1, "header + 5 layers + total");
        assert!(lines[0].starts_with("layer,"));
        assert!(lines[1].starts_with("Cnv1,"));
        assert!(lines.last().unwrap().starts_with("TOTAL,"));
        // Each data row parses back to the right column count.
        for line in &lines[1..6] {
            assert_eq!(line.split(',').count(), 6, "{line}");
        }
    }

    #[test]
    fn dse_csv_covers_all_points() {
        let prog = lower_network(&fxhenn_mnist(1), 8192, 7);
        let res = explore_default(&prog, &FpgaDevice::acu9eg(), 30);
        let csv = dse_points_csv(&res.feasible[..20.min(res.feasible.len())]);
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 1 + 20.min(res.feasible.len()));
        for line in &lines[1..] {
            let cols: Vec<&str> = line.split(',').collect();
            assert_eq!(cols.len(), 7);
            assert!(cols[0].parse::<f64>().is_ok());
            assert!(cols[6] == "true" || cols[6] == "false");
        }
    }

    #[test]
    fn csv_escaping_handles_commas_and_quotes() {
        assert_eq!(csv_line(&["a,b".into(), "c".into()]), "\"a,b\",c");
        assert_eq!(csv_line(&["say \"hi\"".into()]), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn markdown_table_shapes() {
        let md = markdown_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        assert_eq!(md.lines().count(), 4);
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 3 | 4 |"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn markdown_rejects_ragged_rows() {
        markdown_table(&["a", "b"], &[vec!["1".into()]]);
    }
}

//! Command-line interface (argument parsing and command execution) for
//! the `fxhenn` binary.
//!
//! Kept dependency-free: arguments are `--key value` pairs parsed by
//! hand. The binary in `src/bin/fxhenn.rs` is a thin wrapper so the
//! parser and command logic stay unit-testable.

use crate::flow::generate_accelerator;
use crate::report::{layer_table, module_table, summary};
use crate::serve::{BatchDriver, DesignFlowService, InferenceRequest, ServeConfig};
use fxhenn_ckks::CkksParams;
use fxhenn_hw::FpgaDevice;
use fxhenn_nn::{fxhenn_cifar10, fxhenn_mnist, Network};
use std::time::Duration;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Run the design flow for a model on a device.
    Design {
        /// "mnist" or "cifar10".
        model: String,
        /// "acu9eg" or "acu15eg".
        device: String,
    },
    /// Functionally co-simulate a toy network (real encryption).
    Cosim {
        /// RNG seed.
        seed: u64,
    },
    /// Print workload information for a model.
    Info {
        /// "mnist" or "cifar10".
        model: String,
    },
    /// Run the deadline-aware batch driver over a stream of design
    /// requests (demonstrates load shedding and per-request deadlines).
    Serve {
        /// "mnist" or "cifar10".
        model: String,
        /// Requests to submit.
        requests: u64,
        /// Deadline per request, in milliseconds.
        deadline_ms: u64,
        /// Admission queue capacity.
        queue: usize,
        /// Every n-th request gets a deliberately tight (1 ms)
        /// deadline; 0 disables the mix.
        tight_every: u64,
    },
    /// Print usage.
    Help,
}

/// Parse errors with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

/// Usage text.
pub const USAGE: &str = "\
fxhenn — FPGA accelerator designs for HE-CNN inference

USAGE:
    fxhenn design --model <mnist|cifar10> --device <acu9eg|acu15eg>
    fxhenn cosim  [--seed <u64>]
    fxhenn info   --model <mnist|cifar10>
    fxhenn serve  [--model <mnist|cifar10>] [--requests <n>] [--deadline-ms <ms>]
                  [--queue <n>] [--tight-every <n>]
    fxhenn help
";

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Parses a command line (without the program name).
///
/// # Errors
///
/// Returns a [`CliError`] with a usage hint on unknown commands or
/// missing/invalid flags.
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    match args.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
        Some("design") => {
            let model = flag_value(args, "--model")
                .ok_or_else(|| CliError("design needs --model <mnist|cifar10>".into()))?;
            let device = flag_value(args, "--device")
                .ok_or_else(|| CliError("design needs --device <acu9eg|acu15eg>".into()))?;
            validate_model(model)?;
            validate_device(device)?;
            Ok(Command::Design {
                model: model.to_string(),
                device: device.to_string(),
            })
        }
        Some("cosim") => {
            let seed = match flag_value(args, "--seed") {
                None => 7,
                Some(s) => s
                    .parse()
                    .map_err(|_| CliError(format!("--seed must be an integer, got {s:?}")))?,
            };
            Ok(Command::Cosim { seed })
        }
        Some("info") => {
            let model = flag_value(args, "--model")
                .ok_or_else(|| CliError("info needs --model <mnist|cifar10>".into()))?;
            validate_model(model)?;
            Ok(Command::Info {
                model: model.to_string(),
            })
        }
        Some("serve") => {
            let model = flag_value(args, "--model").unwrap_or("mnist");
            validate_model(model)?;
            Ok(Command::Serve {
                model: model.to_string(),
                requests: parse_flag(args, "--requests", 6)?,
                deadline_ms: parse_flag(args, "--deadline-ms", 30_000)?,
                queue: parse_flag(args, "--queue", 4)?,
                tight_every: parse_flag(args, "--tight-every", 3)?,
            })
        }
        Some(other) => Err(CliError(format!("unknown command {other:?}\n{USAGE}"))),
    }
}

fn parse_flag<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
    default: T,
) -> Result<T, CliError> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(s) => s
            .parse()
            .map_err(|_| CliError(format!("{flag} must be an integer, got {s:?}"))),
    }
}

fn validate_model(model: &str) -> Result<(), CliError> {
    match model {
        "mnist" | "cifar10" => Ok(()),
        other => Err(CliError(format!(
            "unknown model {other:?}: expected mnist or cifar10"
        ))),
    }
}

fn validate_device(device: &str) -> Result<(), CliError> {
    match device {
        "acu9eg" | "acu15eg" => Ok(()),
        other => Err(CliError(format!(
            "unknown device {other:?}: expected acu9eg or acu15eg"
        ))),
    }
}

fn model_of(name: &str) -> Result<(Network, CkksParams), CliError> {
    match name {
        "mnist" => Ok((fxhenn_mnist(42), CkksParams::fxhenn_mnist())),
        "cifar10" => Ok((fxhenn_cifar10(42), CkksParams::fxhenn_cifar10())),
        other => Err(CliError(format!(
            "unknown model {other:?}: expected mnist or cifar10"
        ))),
    }
}

fn device_of(name: &str) -> Result<FpgaDevice, CliError> {
    match name {
        "acu9eg" => Ok(FpgaDevice::acu9eg()),
        "acu15eg" => Ok(FpgaDevice::acu15eg()),
        other => Err(CliError(format!(
            "unknown device {other:?}: expected acu9eg or acu15eg"
        ))),
    }
}

/// Executes a parsed command, returning its stdout text.
///
/// # Errors
///
/// Returns a [`CliError`] when the flow fails (e.g. no feasible design).
pub fn run(cmd: &Command) -> Result<String, CliError> {
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::Design { model, device } => {
            let (net, params) = model_of(model)?;
            let dev = device_of(device)?;
            let report = generate_accelerator(&net, &params, &dev)
                .map_err(|e| CliError(e.to_string()))?;
            Ok(format!(
                "{}\n\nModules:\n{}\nLayers:\n{}",
                summary(&report, &dev),
                module_table(&report),
                layer_table(&report)
            ))
        }
        Command::Info { model } => {
            let (net, params) = model_of(model)?;
            let prog = fxhenn_nn::try_lower_network(&net, params.degree(), params.levels())
                .map_err(|e| CliError(e.to_string()))?;
            let mut out = format!(
                "{}: N={}, L={}, log2Q={}, {}\n{} HOPs, {} KeySwitches, {:.1} MB encoded model\n",
                net.name(),
                params.degree(),
                params.levels(),
                params.total_modulus_bits(),
                params.security(),
                prog.hop_count(),
                prog.key_switch_count(),
                prog.model_size_bytes() as f64 / (1024.0 * 1024.0),
            );
            for plan in &prog.layers {
                out.push_str(&format!(
                    "  {:<6} [{}] {:>6} HOPs {:>6} KS, level {} -> {}\n",
                    plan.name,
                    plan.class,
                    plan.hop_count(),
                    plan.key_switch_count(),
                    plan.level_in,
                    plan.level_out
                ));
            }
            Ok(out)
        }
        Command::Serve {
            model,
            requests,
            deadline_ms,
            queue,
            tight_every,
        } => {
            validate_model(model)?;
            let cfg = ServeConfig {
                queue_capacity: (*queue).max(1),
                ..ServeConfig::default()
            };
            let mut driver = BatchDriver::new(DesignFlowService::new(FpgaDevice::acu9eg()), cfg);
            let mut out = String::new();
            for id in 0..*requests {
                let tight = *tight_every != 0 && (id + 1) % *tight_every == 0;
                let deadline = if tight {
                    Duration::from_millis(1)
                } else {
                    Duration::from_millis(*deadline_ms)
                };
                let req = InferenceRequest {
                    id,
                    model: model.clone(),
                    deadline,
                };
                if let Err(e) = driver.submit(req) {
                    out.push_str(&format!("request {id}: rejected: {e}\n"));
                }
            }
            for (id, outcome) in driver.run_queue() {
                match outcome {
                    Ok(report) => out.push_str(&format!(
                        "request {id}: ok, {:.3} s simulated inference latency\n",
                        report.latency_s()
                    )),
                    Err(e) => out.push_str(&format!("request {id}: {e}\n")),
                }
            }
            out.push_str(&format!("serve: {}\n", driver.report()));
            Ok(out)
        }
        Command::Cosim { seed } => {
            let net = fxhenn_nn::toy_mnist_like(*seed);
            let image = fxhenn_nn::synthetic_input(&net, *seed);
            let report = fxhenn_sim::try_cosimulate(
                &net,
                &image,
                CkksParams::insecure_toy(7),
                *seed,
            )
            .map_err(|e| CliError(e.to_string()))?;
            Ok(format!(
                "toy network, seed {seed}\nplaintext logits: {:?}\ndecrypted logits: {:?}\n\
                 max error {:.5}, argmax agrees: {}, trace matches: {}\n",
                report.expected,
                report.actual,
                report.max_error,
                report.argmax_agrees,
                report.trace_matches()
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parses_design_command() {
        let cmd = parse(&args(&["design", "--model", "mnist", "--device", "acu9eg"])).unwrap();
        assert_eq!(
            cmd,
            Command::Design {
                model: "mnist".into(),
                device: "acu9eg".into()
            }
        );
    }

    #[test]
    fn parses_cosim_with_default_seed() {
        assert_eq!(parse(&args(&["cosim"])).unwrap(), Command::Cosim { seed: 7 });
        assert_eq!(
            parse(&args(&["cosim", "--seed", "42"])).unwrap(),
            Command::Cosim { seed: 42 }
        );
    }

    #[test]
    fn rejects_unknown_model_and_device() {
        assert!(parse(&args(&["design", "--model", "resnet", "--device", "acu9eg"])).is_err());
        assert!(parse(&args(&["design", "--model", "mnist", "--device", "vu9p"])).is_err());
        assert!(parse(&args(&["design", "--model", "mnist"])).is_err());
    }

    #[test]
    fn rejects_bad_seed_and_unknown_command() {
        assert!(parse(&args(&["cosim", "--seed", "abc"])).is_err());
        assert!(parse(&args(&["frobnicate"])).is_err());
    }

    #[test]
    fn empty_and_help_yield_usage() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&args(&["help"])).unwrap(), Command::Help);
        let out = run(&Command::Help).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn info_runs_for_mnist() {
        let cmd = parse(&args(&["info", "--model", "mnist"])).unwrap();
        let out = run(&cmd).unwrap();
        assert!(out.contains("FxHENN-MNIST"));
        assert!(out.contains("HOPs"));
        assert!(out.contains("Cnv1"));
    }

    #[test]
    fn cosim_runs_and_agrees() {
        let out = run(&Command::Cosim { seed: 3 }).unwrap();
        assert!(out.contains("argmax agrees: true"), "{out}");
        assert!(out.contains("trace matches: true"));
    }

    #[test]
    fn unvalidated_command_is_an_error_not_a_panic() {
        // Commands constructed directly (bypassing parse) must still
        // fail with a typed error instead of hitting unreachable code.
        let err = run(&Command::Design {
            model: "resnet".into(),
            device: "acu9eg".into(),
        })
        .unwrap_err();
        assert!(err.to_string().contains("unknown model"), "{err}");
        let err = run(&Command::Design {
            model: "mnist".into(),
            device: "vu9p".into(),
        })
        .unwrap_err();
        assert!(err.to_string().contains("unknown device"), "{err}");
        assert!(run(&Command::Info {
            model: "vgg".into()
        })
        .is_err());
    }

    #[test]
    fn parses_serve_with_defaults_and_overrides() {
        assert_eq!(
            parse(&args(&["serve"])).unwrap(),
            Command::Serve {
                model: "mnist".into(),
                requests: 6,
                deadline_ms: 30_000,
                queue: 4,
                tight_every: 3,
            }
        );
        assert_eq!(
            parse(&args(&[
                "serve",
                "--model",
                "mnist",
                "--requests",
                "10",
                "--deadline-ms",
                "500",
                "--queue",
                "2",
                "--tight-every",
                "0",
            ]))
            .unwrap(),
            Command::Serve {
                model: "mnist".into(),
                requests: 10,
                deadline_ms: 500,
                queue: 2,
                tight_every: 0,
            }
        );
        assert!(parse(&args(&["serve", "--model", "resnet"])).is_err());
        assert!(parse(&args(&["serve", "--requests", "many"])).is_err());
    }

    #[test]
    fn serve_sheds_load_beyond_the_queue() {
        // 3 requests into a 1-slot queue: one completes, two are shed
        // with a typed overload rejection — and the driver reports it.
        let out = run(&Command::Serve {
            model: "mnist".into(),
            requests: 3,
            deadline_ms: 60_000,
            queue: 1,
            tight_every: 0,
        })
        .unwrap();
        assert!(out.contains("request 0: ok"), "{out}");
        assert!(out.contains("request 1: rejected: overloaded"), "{out}");
        assert!(out.contains("request 2: rejected: overloaded"), "{out}");
        assert!(out.contains("completed=1 shed=2"), "{out}");
    }

    #[test]
    fn serve_cancels_a_tight_deadline_request() {
        // Every request tight (1 ms): the flow is stopped by its
        // budget and reported as cancelled, not as infeasible.
        let out = run(&Command::Serve {
            model: "mnist".into(),
            requests: 1,
            deadline_ms: 60_000,
            queue: 1,
            tight_every: 1,
        })
        .unwrap();
        assert!(out.contains("request 0: request stopped:"), "{out}");
        assert!(out.contains("expired during"), "{out}");
        assert!(out.contains("cancelled=1"), "{out}");
    }

    #[test]
    fn design_runs_for_mnist_on_acu9eg() {
        let cmd = Command::Design {
            model: "mnist".into(),
            device: "acu9eg".into(),
        };
        let out = run(&cmd).unwrap();
        assert!(out.contains("FxHENN-MNIST"));
        assert!(out.contains("KeySwitch"));
    }
}

//! The "baseline" accelerator of Sec. VII-C: no computation or storage
//! reuse across layers.
//!
//! Every layer receives dedicated module instances, sized by an
//! intuitive greedy allocation that keeps giving more resources to the
//! currently slowest layer until the DSP budget is exhausted. On-chip
//! BRAM is split proportionally to each layer's demand; layers whose
//! allocation falls short of their working set stall on off-chip
//! accesses (harmonic interpolation between full speed and the measured
//! all-off-chip penalties of Table III).

use crate::design::layer_governing_config;
pub use fxhenn_hw::buffers::stall_factor;
use fxhenn_hw::buffers::layer_bram_blocks;
use fxhenn_hw::layer::{layer_latency_seconds, LayerShape};
use fxhenn_hw::{FpgaDevice, HeOpModule, ModuleConfig, ModuleSet, OpClass};
use fxhenn_nn::{HeCnnProgram, HeLayerClass, HeLayerPlan};

/// A baseline design: one dedicated module set per layer.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineDesign {
    /// Module configurations of each layer, in program order.
    pub per_layer: Vec<ModuleSet>,
}

/// Evaluation of a baseline design.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineEval {
    /// End-to-end latency including buffer-starvation stalls.
    pub latency_s: f64,
    /// Per-layer latency (with stalls).
    pub per_layer_latency_s: Vec<f64>,
    /// Per-layer dedicated DSP usage.
    pub per_layer_dsp: Vec<usize>,
    /// Per-layer BRAM demand.
    pub per_layer_bram_demand: Vec<usize>,
    /// Per-layer BRAM actually allocated (proportional split).
    pub per_layer_bram_alloc: Vec<usize>,
    /// Total dedicated DSP (sum over layers — no reuse).
    pub dsp_total: usize,
}

/// DSP usage of one layer's dedicated modules (only the classes the
/// layer actually uses).
pub fn layer_dedicated_dsp(plan: &HeLayerPlan, set: &ModuleSet) -> usize {
    plan.trace
        .kinds_used()
        .into_iter()
        .map(|k| {
            let class = OpClass::from(k);
            HeOpModule::new(class, set.get(class)).dsp_usage()
        })
        .sum()
}

/// Greedily allocates dedicated per-layer modules: repeatedly upgrades
/// the slowest layer's governing module while the summed DSP fits the
/// device.
pub fn allocate_baseline(prog: &HeCnnProgram, device: &FpgaDevice, w_bits: u32) -> BaselineDesign {
    let n_layers = prog.layers.len();
    let mut per_layer = vec![ModuleSet::minimal(); n_layers];

    let total_dsp = |sets: &[ModuleSet]| -> usize {
        prog.layers
            .iter()
            .zip(sets)
            .map(|(plan, set)| layer_dedicated_dsp(plan, set))
            .sum()
    };

    for _ in 0..64 {
        // Latency of each layer at its current dedicated configuration
        // (stall-free here; stalls depend on the final BRAM split).
        let latencies: Vec<f64> = prog
            .layers
            .iter()
            .zip(&per_layer)
            .map(|(plan, set)| layer_latency_seconds(plan, set, prog.degree, device.clock_mhz()))
            .collect();
        let (slowest, _) = latencies
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite latencies"))
            .expect("non-empty network");

        let plan = &prog.layers[slowest];
        let class = match plan.class {
            HeLayerClass::Nks => OpClass::Rescale,
            HeLayerClass::Ks => OpClass::KeySwitch,
        };
        let cur = per_layer[slowest].get(class);
        // Upgrade ladder: deepen intra-parallelism first (cheapest BRAM),
        // then NTT cores, then replicate.
        let candidates = [
            ModuleConfig {
                p_intra: cur.p_intra + 1,
                ..cur
            },
            ModuleConfig {
                nc_ntt: (cur.nc_ntt * 2).min(8),
                ..cur
            },
            ModuleConfig {
                p_inter: cur.p_inter + 1,
                ..cur
            },
        ];
        let mut applied = false;
        for cand in candidates {
            if cand == cur || cand.p_intra > prog.max_level || cand.p_inter > 4 {
                continue;
            }
            let mut trial = per_layer.clone();
            trial[slowest].set(class, cand);
            if total_dsp(&trial) <= device.dsp_slices() {
                let new_lat = layer_latency_seconds(
                    &prog.layers[slowest],
                    &trial[slowest],
                    prog.degree,
                    device.clock_mhz(),
                );
                if new_lat < latencies[slowest] {
                    per_layer = trial;
                    applied = true;
                    break;
                }
            }
        }
        if !applied {
            break;
        }
    }
    let _ = w_bits;
    BaselineDesign { per_layer }
}

/// Evaluates a baseline design: proportional BRAM split, stall-adjusted
/// latencies, summed resource usage.
pub fn evaluate_baseline(
    prog: &HeCnnProgram,
    design: &BaselineDesign,
    device: &FpgaDevice,
    w_bits: u32,
) -> BaselineEval {
    let demands: Vec<usize> = prog
        .layers
        .iter()
        .zip(&design.per_layer)
        .map(|(plan, set)| {
            let shape = LayerShape::from_plan(plan, prog.degree, w_bits);
            layer_bram_blocks(&shape, &layer_governing_config(plan.class, set))
        })
        .collect();
    let total_demand: usize = demands.iter().sum();
    let budget = device.bram_blocks() + device.uram_blocks(); // URAM at ratio 1 (conservative)
    let allocs: Vec<usize> = if total_demand <= budget {
        demands.clone()
    } else {
        demands
            .iter()
            .map(|&d| (d as f64 * budget as f64 / total_demand as f64).floor() as usize)
            .collect()
    };

    let mut per_layer_latency_s = Vec::with_capacity(prog.layers.len());
    let mut per_layer_dsp = Vec::with_capacity(prog.layers.len());
    for ((plan, set), (&demand, &alloc)) in prog
        .layers
        .iter()
        .zip(&design.per_layer)
        .zip(demands.iter().zip(&allocs))
    {
        let base = layer_latency_seconds(plan, set, prog.degree, device.clock_mhz());
        per_layer_latency_s.push(base * stall_factor(alloc, demand, plan.class));
        per_layer_dsp.push(layer_dedicated_dsp(plan, set));
    }

    BaselineEval {
        latency_s: per_layer_latency_s.iter().sum(),
        per_layer_latency_s,
        dsp_total: per_layer_dsp.iter().sum(),
        per_layer_dsp,
        per_layer_bram_demand: demands,
        per_layer_bram_alloc: allocs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxhenn_nn::{fxhenn_mnist, lower_network};

    fn mnist() -> HeCnnProgram {
        lower_network(&fxhenn_mnist(1), 8192, 7)
    }

    use fxhenn_hw::calibration::{OFFCHIP_PENALTY_KS, OFFCHIP_PENALTY_NKS};

    #[test]
    fn stall_factor_interpolates_table3_endpoints() {
        assert_eq!(stall_factor(100, 100, HeLayerClass::Ks), 1.0);
        assert_eq!(stall_factor(200, 100, HeLayerClass::Ks), 1.0);
        let all_off = stall_factor(0, 100, HeLayerClass::Ks);
        assert!((all_off - OFFCHIP_PENALTY_KS).abs() < 1e-9);
        let all_off_nks = stall_factor(0, 100, HeLayerClass::Nks);
        assert!((all_off_nks - OFFCHIP_PENALTY_NKS).abs() < 1e-9);
        // Halfway is mild, not halfway to 139x (convex curve).
        let half = stall_factor(50, 100, HeLayerClass::Ks);
        assert!(half > 1.5 && half < 3.0, "half-buffered stall = {half:.2}");
    }

    #[test]
    fn baseline_respects_dsp_budget() {
        let prog = mnist();
        let device = FpgaDevice::acu9eg();
        let design = allocate_baseline(&prog, &device, 30);
        let eval = evaluate_baseline(&prog, &design, &device, 30);
        assert!(
            eval.dsp_total <= device.dsp_slices(),
            "{} DSP > {}",
            eval.dsp_total,
            device.dsp_slices()
        );
    }

    #[test]
    fn baseline_latency_matches_table9_scale() {
        // Table IX: baseline runs FxHENN-MNIST in 1.17 s on ACU9EG.
        let prog = mnist();
        let device = FpgaDevice::acu9eg();
        let design = allocate_baseline(&prog, &device, 30);
        let eval = evaluate_baseline(&prog, &design, &device, 30);
        assert!(
            (0.6..=2.5).contains(&eval.latency_s),
            "baseline MNIST = {:.2} s (paper 1.17 s)",
            eval.latency_s
        );
    }

    #[test]
    fn baseline_splits_bram_proportionally() {
        let prog = mnist();
        let device = FpgaDevice::acu9eg();
        let design = allocate_baseline(&prog, &device, 30);
        let eval = evaluate_baseline(&prog, &design, &device, 30);
        let total_alloc: usize = eval.per_layer_bram_alloc.iter().sum();
        assert!(total_alloc <= device.bram_blocks() + device.uram_blocks());
        // Demands exceed the chip (Table II: 206%), so allocations are cut.
        let total_demand: usize = eval.per_layer_bram_demand.iter().sum();
        assert!(total_demand > device.bram_blocks());
        for (a, d) in eval
            .per_layer_bram_alloc
            .iter()
            .zip(&eval.per_layer_bram_demand)
        {
            assert!(a <= d);
        }
    }

    #[test]
    fn baseline_upgrades_the_bottleneck_layer() {
        let prog = mnist();
        let device = FpgaDevice::acu9eg();
        let design = allocate_baseline(&prog, &device, 30);
        // Fc1 is the slowest layer; the greedy pass must have upgraded its
        // KeySwitch module beyond minimal.
        let fc1_idx = prog.layers.iter().position(|l| l.name == "Fc1").unwrap();
        let fc1_ks = design.per_layer[fc1_idx].get(OpClass::KeySwitch);
        assert!(
            fc1_ks != ModuleConfig::minimal(),
            "Fc1 should receive extra resources"
        );
    }

    #[test]
    fn dedicated_dsp_counts_only_used_classes() {
        let prog = mnist();
        let set = ModuleSet::minimal();
        let cnv1 = prog.layer("Cnv1").unwrap();
        // Cnv1 uses Add + PCmult + Rescale: 0 + 100 + 112.
        assert_eq!(layer_dedicated_dsp(cnv1, &set), 212);
        let act1 = prog.layer("Act1").unwrap();
        // Act1 uses CCmult + Relin(KS) + Rescale: 100 + 254 + 112.
        assert_eq!(layer_dedicated_dsp(act1, &set), 466);
    }
}

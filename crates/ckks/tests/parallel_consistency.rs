//! Serial-vs-parallel bit-identity of the evaluator hot path.
//!
//! The limb-parallel kernels in `fxhenn-math::par` promise that the
//! thread count never changes a single bit of any ciphertext: each limb
//! is an independent residue channel and every closure writes only its
//! own output. These tests drive the full mul → relinearize → rescale →
//! rotate chain under a forced-serial and a forced-multithreaded
//! schedule at several parameter sets and require exact equality —
//! including on single-core hosts, where `Threads(k)` still spawns real
//! worker threads.

use fxhenn_ckks::{
    Ciphertext, CkksContext, CkksParams, Encryptor, Evaluator, GaloisKeys, KeyGenerator,
    KeySwitchKey, RelinKey,
};
use fxhenn_math::par::{with_dispatch_threshold, with_parallelism, Parallelism};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Rig {
    ctx: CkksContext,
    rk: RelinKey,
    gks: GaloisKeys,
    cjk: KeySwitchKey,
    ct_a: Ciphertext,
    ct_b: Ciphertext,
}

fn rig(n: usize, levels: usize, seed: u64) -> Rig {
    let params = CkksParams::new(n, levels, 30, 45).expect("valid params");
    let ctx = CkksContext::new(params);
    let mut kg = KeyGenerator::new(&ctx, StdRng::seed_from_u64(seed));
    let pk = kg.public_key();
    let rk = kg.relin_key();
    let gks = kg.galois_keys(&[1, 3]);
    let cjk = kg.conjugation_key();
    let mut enc = Encryptor::new(&ctx, pk, StdRng::seed_from_u64(seed + 1));
    let values_a: Vec<f64> = (0..n / 2).map(|i| ((i % 37) as f64 - 18.0) / 23.0).collect();
    let values_b: Vec<f64> = (0..n / 2).map(|i| ((i % 29) as f64 - 14.0) / 31.0).collect();
    let ct_a = enc.encrypt(&values_a);
    let ct_b = enc.encrypt(&values_b);
    Rig {
        ctx,
        rk,
        gks,
        cjk,
        ct_a,
        ct_b,
    }
}

/// Runs the hot chain once and returns every intermediate ciphertext.
fn run_chain(r: &Rig) -> Vec<Ciphertext> {
    let mut ev = Evaluator::new(&r.ctx);
    let tri = ev.mul(&r.ct_a, &r.ct_b).unwrap();
    let lin = ev.relinearize(&tri, &r.rk).unwrap();
    let rs = ev.rescale(&lin).unwrap();
    let rot = ev.rotate(&rs, 1, &r.gks).unwrap();
    let conj = ev.conjugate(&rs, &r.cjk).unwrap();
    vec![tri, lin, rs, rot, conj]
}

#[test]
fn serial_and_threaded_chains_are_bit_identical() {
    for (n, levels) in [(512usize, 3usize), (1024, 4), (2048, 5)] {
        let r = rig(n, levels, 7 + n as u64);
        let serial = with_parallelism(Parallelism::Serial, || run_chain(&r));
        // Threshold 0 forces the dispatcher to actually spawn workers even
        // on single-core hosts, where calibration would otherwise inline.
        let threaded = with_parallelism(Parallelism::Threads(3), || {
            with_dispatch_threshold(0, || run_chain(&r))
        });
        assert_eq!(
            serial, threaded,
            "N={n} L={levels}: thread count must not change any bit"
        );
    }
}

/// The adaptive dispatcher may pick Serial or Threads(k) per call site
/// based on measured crossover points; whatever it picks must never
/// change a single bit of any ciphertext. Drives the full chain under
/// every dispatch policy — forced serial, forced spawn, adaptive, and
/// Auto — at three (N, L) points and requires exact equality.
#[test]
fn dispatch_choice_never_changes_results() {
    for (n, levels) in [(512usize, 3usize), (1024, 4), (2048, 5)] {
        let r = rig(n, levels, 41 + n as u64);
        let forced_serial = with_parallelism(Parallelism::Serial, || {
            with_dispatch_threshold(u64::MAX, || run_chain(&r))
        });
        let forced_spawn = with_parallelism(Parallelism::Threads(3), || {
            with_dispatch_threshold(0, || run_chain(&r))
        });
        let adaptive = with_parallelism(Parallelism::Threads(3), || run_chain(&r));
        let auto = with_parallelism(Parallelism::Auto, || run_chain(&r));
        assert_eq!(
            forced_serial, forced_spawn,
            "N={n} L={levels}: forced spawn must match forced serial"
        );
        assert_eq!(
            forced_serial, adaptive,
            "N={n} L={levels}: adaptive dispatch must match forced serial"
        );
        assert_eq!(
            forced_serial, auto,
            "N={n} L={levels}: Auto must match forced serial"
        );
    }
}

#[test]
fn thread_count_does_not_matter() {
    let r = rig(512, 3, 99);
    let two = with_parallelism(Parallelism::Threads(2), || {
        with_dispatch_threshold(0, || run_chain(&r))
    });
    let five = with_parallelism(Parallelism::Threads(5), || {
        with_dispatch_threshold(0, || run_chain(&r))
    });
    assert_eq!(two, five, "2 and 5 workers must agree exactly");
}

#[test]
fn scratch_reuse_is_deterministic() {
    // A second pass over the same evaluator draws its temporaries from
    // the scratch pool populated by the first pass; the results must be
    // exactly the ones computed with fresh allocations.
    let r = rig(512, 3, 123);
    let mut ev = Evaluator::new(&r.ctx);
    let first: Vec<Ciphertext> = (0..2)
        .map(|_| {
            let tri = ev.mul(&r.ct_a, &r.ct_b).unwrap();
            let lin = ev.relinearize(&tri, &r.rk).unwrap();
            let rs = ev.rescale(&lin).unwrap();
            ev.rotate(&rs, 1, &r.gks).unwrap()
        })
        .collect();
    assert_eq!(first[0], first[1], "pooled scratch must not leak state");
    let fresh = {
        let mut ev2 = Evaluator::new(&r.ctx);
        let tri = ev2.mul(&r.ct_a, &r.ct_b).unwrap();
        let lin = ev2.relinearize(&tri, &r.rk).unwrap();
        let rs = ev2.rescale(&lin).unwrap();
        ev2.rotate(&rs, 1, &r.gks).unwrap()
    };
    assert_eq!(first[0], fresh, "fresh and pooled evaluators must agree");
}

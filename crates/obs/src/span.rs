//! Span logs: ordered per-operation wall-time records.
//!
//! A [`SpanLog`] is the timing sibling of `fxhenn_ckks`'s `OpTrace`:
//! an owned, append-only list a worker fills locally and a parent
//! merges back **in index order**, so the record sequence of a
//! threaded run is identical to the serial run (the durations differ,
//! the structure does not). Durations deliberately live here and never
//! inside `OpTrace` itself — traces are compared byte-for-byte in the
//! parallel-consistency tests and must stay timing-free.
//!
//! The label type is generic: the evaluator uses `(HeOpKind, level)`,
//! the nn executor uses layer names, and tests use plain strings.

/// One timed operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span<L> {
    /// What ran (e.g. `(HeOpKind::CcMult, level)` or a layer name).
    pub label: L,
    /// Wall time, in nanoseconds.
    pub nanos: u64,
}

/// An append-only log of [`Span`]s in execution order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanLog<L> {
    spans: Vec<Span<L>>,
}

impl<L> SpanLog<L> {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        Self { spans: Vec::new() }
    }

    /// Appends one span.
    pub fn record(&mut self, label: L, nanos: u64) {
        self.spans.push(Span { label, nanos });
    }

    /// The recorded spans, in execution order.
    pub fn spans(&self) -> &[Span<L>] {
        &self.spans
    }

    /// Number of spans recorded.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total wall time across all spans, in nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.spans.iter().map(|s| s.nanos).sum()
    }

    /// Appends every span of `other`, preserving its order — the
    /// deterministic merge parents use to fold child logs back in
    /// index order.
    pub fn extend_from(&mut self, other: &SpanLog<L>)
    where
        L: Clone,
    {
        self.spans.extend(other.spans.iter().cloned());
    }
}

impl<L> Default for SpanLog<L> {
    fn default() -> Self {
        Self::new()
    }
}

impl<L> IntoIterator for SpanLog<L> {
    type Item = Span<L>;
    type IntoIter = std::vec::IntoIter<Span<L>>;
    fn into_iter(self) -> Self::IntoIter {
        self.spans.into_iter()
    }
}

impl<L> Extend<Span<L>> for SpanLog<L> {
    fn extend<T: IntoIterator<Item = Span<L>>>(&mut self, iter: T) {
        self.spans.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_and_totals() {
        let mut log = SpanLog::new();
        log.record("a", 10);
        log.record("b", 32);
        assert_eq!(log.len(), 2);
        assert_eq!(log.total_nanos(), 42);
        assert_eq!(log.spans()[0].label, "a");
    }

    #[test]
    fn extend_from_preserves_child_order() {
        let mut parent = SpanLog::new();
        parent.record("p", 1);
        let mut child = SpanLog::new();
        child.record("c1", 2);
        child.record("c2", 3);
        parent.extend_from(&child);
        let labels: Vec<_> = parent.spans().iter().map(|s| s.label).collect();
        assert_eq!(labels, ["p", "c1", "c2"]);
    }
}

//! Higher-level homomorphic linear algebra built on the evaluator:
//! slot sums, plaintext inner products, and the Halevi–Shoup diagonal
//! matrix–vector product.
//!
//! The FxHENN networks use LoLa's row-major packing (see `fxhenn-nn`),
//! but the diagonal method is the other classic way to evaluate
//! `y = W·x` under CKKS — `d` rotations for a `d×d` matrix, no masking —
//! and is provided here both as library functionality and as a reference
//! point for packing-strategy comparisons.

use crate::cipher::Ciphertext;
use crate::eval::Evaluator;
use crate::keys::GaloisKeys;

/// Sums the first `count` slots of a ciphertext into slot 0 (and every
/// slot `j` receives the sum of slots `j..j+p` cyclically, where `p` is
/// `count` rounded up to a power of two).
///
/// Slots beyond `count` must be zero for the result to be exact —
/// callers typically guarantee this by a preceding plaintext
/// multiplication whose encoding zeroes the tail.
///
/// Requires Galois keys for the power-of-two rotations below `count`.
///
/// # Panics
///
/// Panics if `count` is zero, exceeds the slot count, or a Galois key is
/// missing.
pub fn sum_slots(
    ev: &mut Evaluator<'_>,
    ct: &Ciphertext,
    count: usize,
    gks: &GaloisKeys,
) -> Ciphertext {
    let slots = ev.context().degree() / 2;
    assert!(count >= 1 && count <= slots, "count out of range");
    let padded = count.next_power_of_two();
    let mut acc = ct.clone();
    let mut shift = 1usize;
    while shift < padded {
        let rot = ev
            .rotate(&acc, shift, gks)
            .expect("slot-sum rotation key");
        acc = ev.add(&acc, &rot).expect("rotation preserves level/scale");
        shift <<= 1;
    }
    acc
}

/// Homomorphic inner product with a plaintext vector: returns a
/// ciphertext whose slot 0 holds `Σ_i weights[i] · x_i`, consuming one
/// level.
///
/// # Panics
///
/// Panics if `weights` is empty or longer than the slot count, the
/// ciphertext is below level 2, or a rotation key is missing.
pub fn inner_product_plain(
    ev: &mut Evaluator<'_>,
    ct: &Ciphertext,
    weights: &[f64],
    gks: &GaloisKeys,
) -> Ciphertext {
    assert!(!weights.is_empty(), "weights must be non-empty");
    let pw = ev
        .encode_for_mul(weights, ct.level())
        .expect("weights fit the slot count");
    let prod = ev.mul_plain(ct, &pw).expect("encoded at the operand level");
    let scaled = ev.rescale(&prod).expect("PCmult output is linear");
    sum_slots(ev, &scaled, weights.len(), gks)
}

/// The rotation steps [`matvec_diagonal`] needs Galois keys for, given
/// the (power-of-two padded) dimension.
pub fn diagonal_rotations(dim: usize) -> Vec<usize> {
    (1..dim.next_power_of_two()).collect()
}

/// Halevi–Shoup diagonal matrix–vector product: computes `y = W·x` for a
/// square row-major `dim × dim` matrix, with `x` in slots `0..dim` of
/// the ciphertext (zero elsewhere) and `y` landing in slots `0..dim`.
///
/// `y_j = Σ_k diag_k[j] · x_{(j+k) mod dim}` where
/// `diag_k[j] = W[j][(j+k) mod dim]`: one rotation + one plaintext
/// multiplication per diagonal, one level consumed overall.
///
/// The dimension must be a power of two (the rotation group acts on
/// power-of-two strides; pad the matrix with zeros otherwise), and
/// `2·dim` must not exceed the slot count.
///
/// # Panics
///
/// Panics if `matrix.len() != dim²`, `dim` is not a power of two,
/// `dim > slots / 2`, or a rotation key is missing.
pub fn matvec_diagonal(
    ev: &mut Evaluator<'_>,
    ct: &Ciphertext,
    matrix: &[f64],
    dim: usize,
    gks: &GaloisKeys,
) -> Ciphertext {
    assert_eq!(matrix.len(), dim * dim, "matrix must be dim x dim");
    assert!(dim.is_power_of_two(), "dimension must be a power of two");
    let slots = ev.context().degree() / 2;
    assert!(2 * dim <= slots, "2·dim must fit the slot count");

    // Replicate x into slots dim..2·dim so the wrap-around of the cyclic
    // diagonal indexing is covered by a plain (non-cyclic) left shift:
    // slot j+k of (x || x) is x_{(j+k) mod dim} for j+k < 2·dim.
    let shifted_copy = ev
        .rotate(ct, slots - dim, gks) // right-rotate by dim
        .expect("replication rotation key");
    let doubled = ev
        .add(ct, &shifted_copy)
        .expect("rotation preserves level/scale");

    let mut acc: Option<Ciphertext> = None;
    for k in 0..dim {
        // diag_k[j] = W[j][(j+k) mod dim], nonzero only in slots 0..dim.
        let mut diag = vec![0.0; dim];
        for j in 0..dim {
            diag[j] = matrix[j * dim + (j + k) % dim];
        }
        let rotated = if k == 0 {
            doubled.clone()
        } else {
            ev.rotate(&doubled, k, gks).expect("diagonal rotation key")
        };
        let pw = ev
            .encode_for_mul(&diag, rotated.level())
            .expect("diagonal fits the slot count");
        let prod = ev
            .mul_plain(&rotated, &pw)
            .expect("encoded at the operand level");
        acc = Some(match acc {
            None => prod,
            Some(a) => ev.add(&a, &prod).expect("uniform diagonal levels"),
        });
    }
    ev.rescale(&acc.expect("dim >= 1"))
        .expect("PCmult output is linear")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::CkksContext;
    use crate::encrypt::{Decryptor, Encryptor};
    use crate::keys::KeyGenerator;
    use crate::params::CkksParams;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    struct Rig {
        ctx: CkksContext,
    }

    fn setup(rotations: &[usize]) -> (Rig, crate::keys::PublicKey, crate::keys::SecretKey, GaloisKeys)
    {
        let ctx = CkksContext::new(CkksParams::insecure_toy(3));
        let mut kg = KeyGenerator::new(&ctx, StdRng::seed_from_u64(51));
        let pk = kg.public_key();
        let sk = kg.secret_key();
        let gks = kg.galois_keys(rotations);
        (Rig { ctx }, pk, sk, gks)
    }

    #[test]
    fn sum_slots_totals_a_prefix() {
        let rots: Vec<usize> = (0..9).map(|t| 1usize << t).collect();
        let (rig, pk, sk, gks) = setup(&rots);
        let mut enc = Encryptor::new(&rig.ctx, pk, StdRng::seed_from_u64(52));
        let dec = Decryptor::new(&rig.ctx, sk);
        let mut ev = Evaluator::new(&rig.ctx);
        let values: Vec<f64> = (1..=20).map(|v| v as f64).collect();
        let ct = enc.encrypt(&values);
        let summed = sum_slots(&mut ev, &ct, 20, &gks);
        let out = dec.decrypt(&summed);
        assert!((out[0] - 210.0).abs() < 0.1, "sum = {}", out[0]);
    }

    #[test]
    fn inner_product_matches_plaintext_dot() {
        let rots: Vec<usize> = (0..9).map(|t| 1usize << t).collect();
        let (rig, pk, sk, gks) = setup(&rots);
        let mut enc = Encryptor::new(&rig.ctx, pk, StdRng::seed_from_u64(53));
        let dec = Decryptor::new(&rig.ctx, sk);
        let mut ev = Evaluator::new(&rig.ctx);
        let x = [1.5, -2.0, 0.5, 3.0, 1.0];
        let w = [0.2, 0.4, -1.0, 0.5, 2.0];
        let expected: f64 = x.iter().zip(&w).map(|(a, b)| a * b).sum();
        let ct = enc.encrypt(&x);
        let ip = inner_product_plain(&mut ev, &ct, &w, &gks);
        let out = dec.decrypt(&ip);
        assert!(
            (out[0] - expected).abs() < 0.05,
            "{} vs {expected}",
            out[0]
        );
        assert_eq!(ip.level(), ct.level() - 1, "one level consumed");
    }

    #[test]
    fn diagonal_matvec_matches_plaintext() {
        let dim = 8usize;
        let mut rots = diagonal_rotations(dim);
        let slots = 512;
        rots.push(slots - dim); // the replication right-rotate
        let (rig, pk, sk, gks) = setup(&rots);
        let mut enc = Encryptor::new(&rig.ctx, pk, StdRng::seed_from_u64(54));
        let dec = Decryptor::new(&rig.ctx, sk);
        let mut ev = Evaluator::new(&rig.ctx);

        let mut rng = StdRng::seed_from_u64(55);
        let matrix: Vec<f64> = (0..dim * dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let x: Vec<f64> = (0..dim).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let expected: Vec<f64> = (0..dim)
            .map(|j| (0..dim).map(|i| matrix[j * dim + i] * x[i]).sum())
            .collect();

        let ct = enc.encrypt(&x);
        let y = matvec_diagonal(&mut ev, &ct, &matrix, dim, &gks);
        let out = dec.decrypt(&y);
        for j in 0..dim {
            assert!(
                (out[j] - expected[j]).abs() < 0.05,
                "slot {j}: {} vs {}",
                out[j],
                expected[j]
            );
        }
    }

    #[test]
    fn diagonal_matvec_identity_matrix() {
        let dim = 4usize;
        let mut rots = diagonal_rotations(dim);
        rots.push(512 - dim);
        let (rig, pk, sk, gks) = setup(&rots);
        let mut enc = Encryptor::new(&rig.ctx, pk, StdRng::seed_from_u64(56));
        let dec = Decryptor::new(&rig.ctx, sk);
        let mut ev = Evaluator::new(&rig.ctx);
        let mut eye = vec![0.0; dim * dim];
        for j in 0..dim {
            eye[j * dim + j] = 1.0;
        }
        let x = [2.0, -1.0, 0.5, 4.0];
        let ct = enc.encrypt(&x);
        let y = matvec_diagonal(&mut ev, &ct, &eye, dim, &gks);
        let out = dec.decrypt(&y);
        for j in 0..dim {
            assert!((out[j] - x[j]).abs() < 0.05, "slot {j}");
        }
    }

    #[test]
    fn diagonal_rotation_requirements_are_minimal() {
        assert_eq!(diagonal_rotations(8), vec![1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(diagonal_rotations(1), Vec::<usize>::new());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_dim_rejected() {
        let (rig, pk, _sk, gks) = setup(&[1]);
        let mut enc = Encryptor::new(&rig.ctx, pk, StdRng::seed_from_u64(57));
        let mut ev = Evaluator::new(&rig.ctx);
        let ct = enc.encrypt(&[1.0; 6]);
        matvec_diagonal(&mut ev, &ct, &vec![0.0; 36], 6, &gks);
    }
}

//! The `fxhenn` command-line tool: design-flow runs, workload info and
//! functional co-simulation from a shell.
//!
//! ```sh
//! fxhenn design --model mnist --device acu9eg
//! fxhenn info   --model cifar10
//! fxhenn cosim  --seed 42
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match fxhenn::cli::parse(&args).and_then(|cmd| fxhenn::cli::run(&cmd)) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

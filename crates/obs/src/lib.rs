//! `fxhenn-obs` — always-on telemetry for the FxHENN stack.
//!
//! The paper's whole argument is an analytic latency/resource model
//! (Eqs. 1–9) validated against measured runtimes (Table I). This crate
//! is the measured side's plumbing, kept cheap enough to never turn
//! off:
//!
//! * [`metrics`] — a process-global [`Collector`](metrics::Collector)
//!   of named counters, gauges and fixed-bucket latency histograms.
//!   Hot-path updates are single relaxed atomic increments against a
//!   thread-local shard (the same chunk-per-worker philosophy as
//!   `fxhenn_math::par`), so instrumenting every HE op costs
//!   nanoseconds against ops that cost milliseconds.
//! * [`span`] — per-operation wall-time records
//!   ([`SpanLog`](span::SpanLog)), an owned log per evaluator that
//!   child evaluators merge back in index order — deterministic
//!   ordering exactly like the existing `OpTrace`.
//! * [`expose`] — Prometheus text-format rendering of a collector
//!   snapshot (the `fxhenn serve --metrics` endpoint).
//! * [`attribution`] — joins measured wall time against modeled cycle
//!   counts and emits per-key shares plus a model-error percentage per
//!   row: the Table I validation loop, live.
//!
//! The crate is deliberately free of dependencies (std only) so every
//! other crate in the workspace can layer on top of it without cycles.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod attribution;
pub mod expose;
pub mod metrics;
pub mod span;

pub use attribution::{attribution_rows, AttributionRow};
pub use expose::render_prometheus;
pub use metrics::{global, Collector, Counter, Gauge, Histogram, DEFAULT_NS_BUCKETS};
pub use span::{Span, SpanLog};

//! Prometheus text-format exposition (version 0.0.4) of a collector.
//!
//! Metric names registered in the collector may carry an inline label
//! set (`fxhenn_he_ops_total{op="CCmult"}`); all series of one family
//! (the name before `{`) are grouped under a single `# TYPE` header.
//! Output is sorted by name (the collector stores a `BTreeMap`), so
//! the rendering is deterministic and golden-testable.

use crate::metrics::{Collector, HistogramSnapshot};
use std::fmt::Write as _;

/// Splits `fam{a="b"}` into `("fam", Some("a=\"b\""))`.
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match name.split_once('{') {
        Some((fam, rest)) => (fam, Some(rest.trim_end_matches('}'))),
        None => (name, None),
    }
}

/// Joins a family with an optional inline label set and one extra
/// label (used for histogram `le`).
fn series(fam: &str, suffix: &str, labels: Option<&str>, extra: Option<&str>) -> String {
    let mut inner = String::new();
    if let Some(l) = labels {
        inner.push_str(l);
    }
    if let Some(e) = extra {
        if !inner.is_empty() {
            inner.push(',');
        }
        inner.push_str(e);
    }
    if inner.is_empty() {
        format!("{fam}{suffix}")
    } else {
        format!("{fam}{suffix}{{{inner}}}")
    }
}

fn type_header(out: &mut String, fam: &str, kind: &str, last_fam: &mut String) {
    if fam != last_fam {
        let _ = writeln!(out, "# TYPE {fam} {kind}");
        last_fam.clear();
        last_fam.push_str(fam);
    }
}

fn render_histogram(out: &mut String, fam: &str, labels: Option<&str>, snap: &HistogramSnapshot) {
    let mut cumulative = 0u64;
    for (bound, count) in snap.bounds.iter().zip(&snap.counts) {
        cumulative += count;
        let le = format!("le=\"{bound}\"");
        let _ = writeln!(
            out,
            "{} {cumulative}",
            series(fam, "_bucket", labels, Some(&le))
        );
    }
    let _ = writeln!(
        out,
        "{} {}",
        series(fam, "_bucket", labels, Some("le=\"+Inf\"")),
        snap.count
    );
    let _ = writeln!(out, "{} {}", series(fam, "_sum", labels, None), snap.sum);
    let _ = writeln!(out, "{} {}", series(fam, "_count", labels, None), snap.count);
}

/// Renders every metric in `collector` in Prometheus text format.
#[must_use]
pub fn render_prometheus(collector: &Collector) -> String {
    let mut out = String::new();
    let mut last_fam = String::new();
    for (name, value) in collector.counters() {
        let (fam, labels) = split_labels(&name);
        type_header(&mut out, fam, "counter", &mut last_fam);
        let _ = writeln!(out, "{} {value}", series(fam, "", labels, None));
    }
    last_fam.clear();
    for (name, value) in collector.gauges() {
        let (fam, labels) = split_labels(&name);
        type_header(&mut out, fam, "gauge", &mut last_fam);
        let _ = writeln!(out, "{} {value}", series(fam, "", labels, None));
    }
    last_fam.clear();
    for (name, snap) in collector.histograms() {
        let (fam, labels) = split_labels(&name);
        type_header(&mut out, fam, "histogram", &mut last_fam);
        render_histogram(&mut out, fam, labels, &snap);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden test: the full exposition of a small collector, verbatim.
    /// Keep in sync with DESIGN.md §10's metric-naming scheme.
    #[test]
    fn golden_exposition_format() {
        static BOUNDS: [u64; 2] = [10, 100];
        let c = Collector::new();
        c.counter("demo_ops_total{op=\"CCmult\"}").add(3);
        c.counter("demo_ops_total{op=\"Rescale\"}").add(2);
        c.counter("demo_shed_total").inc();
        c.gauge("demo_queue_depth").set(4);
        let h = c.histogram_with("demo_latency_ns{op=\"CCmult\"}", &BOUNDS);
        h.observe(5);
        h.observe(10);
        h.observe(11);
        h.observe(1_000);
        let got = render_prometheus(&c);
        let want = "\
# TYPE demo_ops_total counter
demo_ops_total{op=\"CCmult\"} 3
demo_ops_total{op=\"Rescale\"} 2
# TYPE demo_shed_total counter
demo_shed_total 1
# TYPE demo_queue_depth gauge
demo_queue_depth 4
# TYPE demo_latency_ns histogram
demo_latency_ns_bucket{op=\"CCmult\",le=\"10\"} 2
demo_latency_ns_bucket{op=\"CCmult\",le=\"100\"} 3
demo_latency_ns_bucket{op=\"CCmult\",le=\"+Inf\"} 4
demo_latency_ns_sum{op=\"CCmult\"} 1026
demo_latency_ns_count{op=\"CCmult\"} 4
";
        assert_eq!(got, want, "got:\n{got}");
    }

    #[test]
    fn unlabeled_histogram_renders_bare_le() {
        static BOUNDS: [u64; 1] = [7];
        let c = Collector::new();
        c.histogram_with("h", &BOUNDS).observe(3);
        let got = render_prometheus(&c);
        assert!(got.contains("h_bucket{le=\"7\"} 1"), "{got}");
        assert!(got.contains("h_count 1"), "{got}");
    }
}

//! A minimal dense tensor for plaintext CNN reference execution.
//!
//! The plaintext network is the oracle the HE-CNN inference is verified
//! against; it only needs `f64` storage, CHW indexing and flattening.

/// A dense row-major tensor of `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f64>,
}

impl Tensor {
    /// Creates a zero tensor of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or has a zero dimension.
    pub fn zeros(shape: &[usize]) -> Self {
        assert!(!shape.is_empty(), "tensor needs at least one dimension");
        assert!(
            shape.iter().all(|&d| d > 0),
            "tensor dimensions must be positive"
        );
        let len = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor from explicit data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_data(shape: &[usize], data: Vec<f64>) -> Self {
        let expect: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            expect,
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        assert!(!shape.is_empty(), "tensor needs at least one dimension");
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The tensor shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor has no elements (unreachable by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat data slice (row-major).
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat data slice.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat data.
    pub fn into_data(self) -> Vec<f64> {
        self.data
    }

    /// CHW element access for 3-dimensional tensors.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 3-dimensional or indices are out of
    /// bounds.
    #[inline]
    pub fn at3(&self, c: usize, h: usize, w: usize) -> f64 {
        assert_eq!(self.shape.len(), 3, "at3 needs a 3-D tensor");
        let (ch, hh, ww) = (self.shape[0], self.shape[1], self.shape[2]);
        assert!(c < ch && h < hh && w < ww, "index out of bounds");
        self.data[(c * hh + h) * ww + w]
    }

    /// Mutable CHW element access for 3-dimensional tensors.
    #[inline]
    pub fn at3_mut(&mut self, c: usize, h: usize, w: usize) -> &mut f64 {
        assert_eq!(self.shape.len(), 3, "at3_mut needs a 3-D tensor");
        let (ch, hh, ww) = (self.shape[0], self.shape[1], self.shape[2]);
        assert!(c < ch && h < hh && w < ww, "index out of bounds");
        &mut self.data[(c * hh + h) * ww + w]
    }

    /// Reshapes to a flat vector (1-D) without copying.
    pub fn flattened(mut self) -> Tensor {
        let len = self.data.len();
        self.shape = vec![len];
        self
    }

    /// Largest absolute element, or 0 for an empty tensor.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &v| m.max(v.abs()))
    }

    /// Index of the maximum element (argmax over flat data).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty());
        self.data
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaNs in tensors"))
            .map(|(i, _)| i)
            .expect("non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_shape_and_len() {
        let t = Tensor::zeros(&[3, 4, 5]);
        assert_eq!(t.shape(), &[3, 4, 5]);
        assert_eq!(t.len(), 60);
        assert!(!t.is_empty());
        assert!(t.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn chw_indexing_is_row_major() {
        let mut t = Tensor::zeros(&[2, 3, 4]);
        *t.at3_mut(1, 2, 3) = 7.5;
        assert_eq!(t.at3(1, 2, 3), 7.5);
        assert_eq!(t.data()[(3 + 2) * 4 + 3], 7.5);
    }

    #[test]
    fn from_data_validates_length() {
        let t = Tensor::from_data(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.len(), 4);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_data_rejects_bad_length() {
        Tensor::from_data(&[2, 2], vec![1.0]);
    }

    #[test]
    fn flatten_preserves_data() {
        let t = Tensor::from_data(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]).flattened();
        assert_eq!(t.shape(), &[4]);
        assert_eq!(t.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn argmax_and_max_abs() {
        let t = Tensor::from_data(&[4], vec![1.0, -5.0, 3.0, 2.0]);
        assert_eq!(t.argmax(), 2);
        assert_eq!(t.max_abs(), 5.0);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimension_rejected() {
        Tensor::zeros(&[3, 0]);
    }
}

//! Ablation study of FxHENN's design choices: how much latency each
//! mechanism buys on a given workload/device pair.
//!
//! The variants correspond to the paper's own comparisons:
//!
//! * **Full** — inter-layer module reuse + inter-layer buffer reuse
//!   (`max` BRAM semantics) + URAM conversion (the FxHENN flow).
//! * **NoBufferReuse** — every layer keeps its buffers resident
//!   simultaneously (`sum` BRAM semantics), so parallelism is starved.
//! * **NoModuleReuse** — the Sec. VII-C baseline: dedicated modules per
//!   layer with a proportional BRAM split.
//! * **NoUram** — the FxHENN flow with the URAM pool removed (isolates
//!   Sec. VI-A's URAM conversion; only meaningful on URAM devices).

use crate::baseline::{allocate_baseline, evaluate_baseline};
use crate::design::{layer_governing_config, DesignPoint, ProgramCost};
use crate::explore::{explore_default, SearchSpace};
use fxhenn_hw::buffers::{layer_bram_blocks, stall_factor};
use fxhenn_hw::layer::{LayerCostModel, LayerShape};
use fxhenn_hw::{FpgaDevice, ModuleConfig, ModuleSet, OpClass};
use fxhenn_nn::HeCnnProgram;

/// One ablation variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// The full FxHENN flow.
    Full,
    /// Buffer reuse disabled: BRAM demand sums over layers.
    NoBufferReuse,
    /// Module reuse disabled: the per-layer dedicated baseline.
    NoModuleReuse,
    /// URAM conversion disabled.
    NoUram,
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Variant::Full => "full FxHENN",
            Variant::NoBufferReuse => "no buffer reuse",
            Variant::NoModuleReuse => "no module reuse",
            Variant::NoUram => "no URAM",
        };
        f.write_str(s)
    }
}

/// The result of one ablation variant.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Which mechanism was removed.
    pub variant: Variant,
    /// End-to-end latency in seconds.
    pub latency_s: f64,
    /// Slowdown relative to the full flow.
    pub slowdown: f64,
}

/// Explores the design space with summed (no-reuse) BRAM semantics.
fn explore_sum_bram(prog: &HeCnnProgram, device: &FpgaDevice, w_bits: u32) -> f64 {
    let cost = ProgramCost::new(prog, w_bits);
    let space = SearchSpace::paper_default(prog.max_level);
    let budget = device.bram_blocks() + device.uram_blocks();
    let mut best = f64::INFINITY;

    for &ks_nc in &space.nc_options {
        for &ks_intra in &space.intra_options {
            for &rs_nc in &space.nc_options {
                for &rs_intra in &space.intra_options {
                    let mut modules = ModuleSet::minimal();
                    modules.set(
                        OpClass::KeySwitch,
                        ModuleConfig {
                            nc_ntt: ks_nc,
                            p_intra: ks_intra,
                            p_inter: 1,
                        },
                    );
                    modules.set(
                        OpClass::Rescale,
                        ModuleConfig {
                            nc_ntt: rs_nc,
                            p_intra: rs_intra,
                            p_inter: 1,
                        },
                    );
                    let point = DesignPoint { modules };
                    // Summed BRAM across all layers must fit.
                    let total: usize = prog
                        .layers
                        .iter()
                        .map(|plan| {
                            let shape = LayerShape::from_plan(plan, prog.degree, w_bits);
                            let cfg = layer_governing_config(plan.class, &point.modules);
                            layer_bram_blocks(&shape, &cfg)
                        })
                        .sum();
                    if total > budget {
                        continue;
                    }
                    let eval = cost.evaluate(&point, device);
                    if eval.feasible && eval.latency_s < best {
                        best = eval.latency_s;
                    }
                }
            }
        }
    }
    if best.is_finite() {
        return best;
    }
    // Nothing fits with resident buffers for every layer (Table II's 206%
    // aggregate demand): fall back to the minimal design with the budget
    // split proportionally and stalls on the shortfall.
    let point = DesignPoint::minimal();
    let demands: Vec<usize> = prog
        .layers
        .iter()
        .map(|plan| {
            let shape = LayerShape::from_plan(plan, prog.degree, w_bits);
            let cfg = layer_governing_config(plan.class, &point.modules);
            layer_bram_blocks(&shape, &cfg)
        })
        .collect();
    let total: usize = demands.iter().sum();
    prog.layers
        .iter()
        .zip(&demands)
        .map(|(plan, &demand)| {
            let grant = (demand as f64 * budget as f64 / total as f64).floor() as usize;
            let cycles = LayerCostModel::from_plan(plan).latency_cycles(&point.modules, prog.degree);
            cycles as f64 * device.cycle_seconds() * stall_factor(grant, demand, plan.class)
        })
        .sum()
}

/// Runs the full ablation on a program/device pair, returning one row
/// per variant (Full first).
pub fn ablate(prog: &HeCnnProgram, device: &FpgaDevice, w_bits: u32) -> Vec<AblationRow> {
    let full = explore_default(prog, device, w_bits)
        .best
        .map(|b| b.eval.latency_s)
        .unwrap_or(f64::INFINITY);

    let no_buffer = explore_sum_bram(prog, device, w_bits);

    let base_design = allocate_baseline(prog, device, w_bits);
    let no_module = evaluate_baseline(prog, &base_design, device, w_bits).latency_s;

    let no_uram_device = FpgaDevice::new(
        format!("{}-nouram", device.name()),
        device.dsp_slices(),
        device.bram_blocks(),
        0,
        device.clock_mhz(),
        device.tdp_watts(),
    );
    let no_uram = explore_default(prog, &no_uram_device, w_bits)
        .best
        .map(|b| b.eval.latency_s)
        .unwrap_or(f64::INFINITY);

    [
        (Variant::Full, full),
        (Variant::NoBufferReuse, no_buffer),
        (Variant::NoModuleReuse, no_module),
        (Variant::NoUram, no_uram),
    ]
    .into_iter()
    .map(|(variant, latency_s)| AblationRow {
        variant,
        latency_s,
        slowdown: latency_s / full,
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxhenn_nn::{fxhenn_mnist, lower_network};

    fn mnist() -> HeCnnProgram {
        lower_network(&fxhenn_mnist(1), 8192, 7)
    }

    #[test]
    fn every_ablated_variant_is_no_faster_than_full() {
        let prog = mnist();
        let rows = ablate(&prog, &FpgaDevice::acu9eg(), 30);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].variant, Variant::Full);
        for row in &rows[1..] {
            assert!(
                row.slowdown >= 0.999,
                "{} is faster than the full flow ({:.2}x)",
                row.variant,
                row.slowdown
            );
        }
    }

    #[test]
    fn buffer_reuse_matters_on_acu9eg() {
        // Summed-BRAM semantics reproduce Table II's crunch: feasible
        // designs exist only at low parallelism, costing real latency.
        let prog = mnist();
        let rows = ablate(&prog, &FpgaDevice::acu9eg(), 30);
        let no_buffer = rows
            .iter()
            .find(|r| r.variant == Variant::NoBufferReuse)
            .unwrap();
        assert!(
            no_buffer.slowdown > 1.3,
            "buffer reuse buys {:.2}x",
            no_buffer.slowdown
        );
    }

    #[test]
    fn module_reuse_matters() {
        let prog = mnist();
        let rows = ablate(&prog, &FpgaDevice::acu9eg(), 30);
        let no_module = rows
            .iter()
            .find(|r| r.variant == Variant::NoModuleReuse)
            .unwrap();
        // Table IX: 4.88x baseline gap.
        assert!(
            no_module.slowdown > 2.0,
            "module reuse buys {:.2}x",
            no_module.slowdown
        );
    }

    #[test]
    fn uram_is_irrelevant_on_acu9eg_but_not_on_acu15eg() {
        let prog = mnist();
        let rows9 = ablate(&prog, &FpgaDevice::acu9eg(), 30);
        let no_uram9 = rows9.iter().find(|r| r.variant == Variant::NoUram).unwrap();
        assert!(
            (no_uram9.slowdown - 1.0).abs() < 1e-9,
            "ACU9EG has no URAM to lose"
        );

        let rows15 = ablate(&prog, &FpgaDevice::acu15eg(), 30);
        let no_uram15 = rows15.iter().find(|r| r.variant == Variant::NoUram).unwrap();
        assert!(
            no_uram15.slowdown >= 1.0,
            "removing URAM cannot speed ACU15EG up"
        );
    }
}

//! Plaintext CNN layers: the reference network the HE-CNN must agree
//! with.
//!
//! HE-friendly networks use only polynomial operations: convolution,
//! square activation (the CryptoNets/LoLa ReLU substitute) and dense
//! layers. Each layer implements plaintext `forward` for functional
//! verification; the HE lowering lives in [`crate::lowering`].

use crate::tensor::Tensor;

/// A 2-D convolution over a CHW tensor, valid padding.
#[derive(Debug, Clone, PartialEq)]
pub struct Conv2d {
    /// Output channels (feature maps).
    pub out_channels: usize,
    /// Input channels.
    pub in_channels: usize,
    /// Kernel height and width.
    pub kernel: (usize, usize),
    /// Stride in both dimensions.
    pub stride: (usize, usize),
    /// Weights indexed `[out][in][kh][kw]`, flattened row-major.
    pub weights: Vec<f64>,
    /// One bias per output channel.
    pub bias: Vec<f64>,
}

impl Conv2d {
    /// Creates a convolution with the given weights.
    ///
    /// # Panics
    ///
    /// Panics if the weight or bias lengths do not match the declared
    /// shape, or any dimension is zero.
    pub fn new(
        out_channels: usize,
        in_channels: usize,
        kernel: (usize, usize),
        stride: (usize, usize),
        weights: Vec<f64>,
        bias: Vec<f64>,
    ) -> Self {
        assert!(out_channels > 0 && in_channels > 0, "channels must be positive");
        assert!(kernel.0 > 0 && kernel.1 > 0, "kernel must be positive");
        assert!(stride.0 > 0 && stride.1 > 0, "stride must be positive");
        assert_eq!(
            weights.len(),
            out_channels * in_channels * kernel.0 * kernel.1,
            "weight count mismatch"
        );
        assert_eq!(bias.len(), out_channels, "bias count mismatch");
        Self {
            out_channels,
            in_channels,
            kernel,
            stride,
            weights,
            bias,
        }
    }

    /// Weight value for output map `o`, input channel `c`, kernel row
    /// `kh`, kernel column `kw`.
    #[inline]
    pub fn weight(&self, o: usize, c: usize, kh: usize, kw: usize) -> f64 {
        let (kh_n, kw_n) = self.kernel;
        self.weights[((o * self.in_channels + c) * kh_n + kh) * kw_n + kw]
    }

    /// Output spatial size for an input of `(h, w)` (valid padding).
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit in the input.
    pub fn output_size(&self, h: usize, w: usize) -> (usize, usize) {
        assert!(
            h >= self.kernel.0 && w >= self.kernel.1,
            "input smaller than kernel"
        );
        (
            (h - self.kernel.0) / self.stride.0 + 1,
            (w - self.kernel.1) / self.stride.1 + 1,
        )
    }

    /// Number of kernel offsets (`in_channels · kh · kw`) — the loop trip
    /// count of the LoLa conv lowering.
    pub fn offset_count(&self) -> usize {
        self.in_channels * self.kernel.0 * self.kernel.1
    }

    /// Plaintext forward pass over a CHW input.
    ///
    /// # Panics
    ///
    /// Panics if the input is not 3-D with the declared channel count.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.shape().len(), 3, "conv input must be CHW");
        assert_eq!(input.shape()[0], self.in_channels, "channel mismatch");
        let (h, w) = (input.shape()[1], input.shape()[2]);
        let (oh, ow) = self.output_size(h, w);
        let mut out = Tensor::zeros(&[self.out_channels, oh, ow]);
        for o in 0..self.out_channels {
            for y in 0..oh {
                for x in 0..ow {
                    let mut acc = self.bias[o];
                    for c in 0..self.in_channels {
                        for kh in 0..self.kernel.0 {
                            for kw in 0..self.kernel.1 {
                                acc += self.weight(o, c, kh, kw)
                                    * input.at3(c, y * self.stride.0 + kh, x * self.stride.1 + kw);
                            }
                        }
                    }
                    *out.at3_mut(o, y, x) = acc;
                }
            }
        }
        out
    }

    /// Plaintext multiply-accumulate count for an input of `(h, w)` — the
    /// "MACs" column of the paper's Table IV.
    pub fn mac_count(&self, h: usize, w: usize) -> usize {
        let (oh, ow) = self.output_size(h, w);
        self.out_channels * oh * ow * self.offset_count()
    }
}

/// The square activation `x ↦ x²` used in place of ReLU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Square;

impl Square {
    /// Plaintext forward pass.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        let data = input.data().iter().map(|&v| v * v).collect();
        Tensor::from_data(input.shape(), data)
    }
}

/// A fully connected (dense) layer `y = W·x + b`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    /// Output dimension.
    pub out_features: usize,
    /// Input dimension.
    pub in_features: usize,
    /// Row-major weights `[out][in]`.
    pub weights: Vec<f64>,
    /// One bias per output.
    pub bias: Vec<f64>,
}

impl Dense {
    /// Creates a dense layer.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches or zero dimensions.
    pub fn new(out_features: usize, in_features: usize, weights: Vec<f64>, bias: Vec<f64>) -> Self {
        assert!(out_features > 0 && in_features > 0, "dimensions must be positive");
        assert_eq!(
            weights.len(),
            out_features * in_features,
            "weight count mismatch"
        );
        assert_eq!(bias.len(), out_features, "bias count mismatch");
        Self {
            out_features,
            in_features,
            weights,
            bias,
        }
    }

    /// Weight of output `o`, input `i`.
    #[inline]
    pub fn weight(&self, o: usize, i: usize) -> f64 {
        self.weights[o * self.in_features + i]
    }

    /// Plaintext forward pass over a flattened input.
    ///
    /// # Panics
    ///
    /// Panics if the input length differs from `in_features`.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.len(), self.in_features, "input length mismatch");
        let x = input.data();
        let data = (0..self.out_features)
            .map(|o| {
                let row = &self.weights[o * self.in_features..(o + 1) * self.in_features];
                row.iter().zip(x).map(|(&w, &v)| w * v).sum::<f64>() + self.bias[o]
            })
            .collect();
        Tensor::from_data(&[self.out_features], data)
    }

    /// Plaintext multiply-accumulate count.
    pub fn mac_count(&self) -> usize {
        self.out_features * self.in_features
    }
}

/// Average pooling over a CHW tensor — linear, hence directly
/// HE-friendly (CryptoNets replaces max-pool with it for exactly this
/// reason). Lowered as a sparse dense layer (rotate-and-sum).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AvgPool2d {
    /// Pooling window height and width.
    pub kernel: (usize, usize),
    /// Stride in both dimensions.
    pub stride: (usize, usize),
}

impl AvgPool2d {
    /// Creates an average pooling layer.
    ///
    /// # Panics
    ///
    /// Panics if kernel or stride is zero.
    pub fn new(kernel: (usize, usize), stride: (usize, usize)) -> Self {
        assert!(kernel.0 > 0 && kernel.1 > 0, "kernel must be positive");
        assert!(stride.0 > 0 && stride.1 > 0, "stride must be positive");
        Self { kernel, stride }
    }

    /// Output spatial size for an `(h, w)` input.
    ///
    /// # Panics
    ///
    /// Panics if the window does not fit.
    pub fn output_size(&self, h: usize, w: usize) -> (usize, usize) {
        assert!(h >= self.kernel.0 && w >= self.kernel.1, "input smaller than window");
        (
            (h - self.kernel.0) / self.stride.0 + 1,
            (w - self.kernel.1) / self.stride.1 + 1,
        )
    }

    /// The dense-matrix weight between flattened input value `v` and
    /// flattened output value `k` over a `shape` (CHW) input: `1/|window|`
    /// when `v` lies in `k`'s window of the same channel, else 0.
    pub fn dense_weight(&self, shape: &[usize], k: usize, v: usize) -> f64 {
        let (h, w) = (shape[1], shape[2]);
        let (oh, ow) = self.output_size(h, w);
        let c_out = k / (oh * ow);
        let rest = k % (oh * ow);
        let oy = rest / ow;
        let ox = rest % ow;
        let c_in = v / (h * w);
        if c_in != c_out {
            return 0.0;
        }
        let rest_v = v % (h * w);
        let y = rest_v / w;
        let x = rest_v % w;
        let base_y = oy * self.stride.0;
        let base_x = ox * self.stride.1;
        if y >= base_y && y < base_y + self.kernel.0 && x >= base_x && x < base_x + self.kernel.1
        {
            1.0 / (self.kernel.0 * self.kernel.1) as f64
        } else {
            0.0
        }
    }

    /// Plaintext forward pass over a CHW input.
    ///
    /// # Panics
    ///
    /// Panics unless the input is 3-D and at least as large as the window.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.shape().len(), 3, "pooling input must be CHW");
        let (c_n, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
        let (oh, ow) = self.output_size(h, w);
        let inv = 1.0 / (self.kernel.0 * self.kernel.1) as f64;
        let mut out = Tensor::zeros(&[c_n, oh, ow]);
        for c in 0..c_n {
            for y in 0..oh {
                for x in 0..ow {
                    let mut acc = 0.0;
                    for ky in 0..self.kernel.0 {
                        for kx in 0..self.kernel.1 {
                            acc += input.at3(c, y * self.stride.0 + ky, x * self.stride.1 + kx);
                        }
                    }
                    *out.at3_mut(c, y, x) = acc * inv;
                }
            }
        }
        out
    }
}

/// A per-channel affine map `y = a_c · x + b_c` — a folded batch
/// normalization (or any diagonal linear layer). Lowered as one
/// PCmult + Rescale + PCadd per ciphertext: an "NKS" layer.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelScale {
    /// Multiplier per channel.
    pub factors: Vec<f64>,
    /// Offset per channel.
    pub shifts: Vec<f64>,
}

impl ChannelScale {
    /// Creates a per-channel affine layer.
    ///
    /// # Panics
    ///
    /// Panics if the factor and shift counts differ or are empty.
    pub fn new(factors: Vec<f64>, shifts: Vec<f64>) -> Self {
        assert!(!factors.is_empty(), "at least one channel");
        assert_eq!(factors.len(), shifts.len(), "one shift per factor");
        Self { factors, shifts }
    }

    /// Folds batch-normalization statistics into the affine form:
    /// `a = gamma / sqrt(var + eps)`, `b = beta - a·mean`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches or non-positive variances.
    pub fn from_batch_norm(
        gamma: &[f64],
        beta: &[f64],
        mean: &[f64],
        var: &[f64],
        eps: f64,
    ) -> Self {
        assert!(
            gamma.len() == beta.len() && beta.len() == mean.len() && mean.len() == var.len(),
            "batch-norm parameter lengths must match"
        );
        assert!(var.iter().all(|&v| v + eps > 0.0), "variance must be positive");
        let factors: Vec<f64> = gamma
            .iter()
            .zip(var)
            .map(|(&g, &v)| g / (v + eps).sqrt())
            .collect();
        let shifts = beta
            .iter()
            .zip(&factors)
            .zip(mean)
            .map(|((&b, &a), &m)| b - a * m)
            .collect();
        Self { factors, shifts }
    }

    /// Plaintext forward pass over a CHW input.
    ///
    /// # Panics
    ///
    /// Panics unless the input is 3-D with a matching channel count.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.shape().len(), 3, "channel scale input must be CHW");
        assert_eq!(input.shape()[0], self.factors.len(), "channel mismatch");
        let (c_n, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
        let mut out = input.clone();
        for c in 0..c_n {
            for y in 0..h {
                for x in 0..w {
                    *out.at3_mut(c, y, x) = self.factors[c] * input.at3(c, y, x) + self.shifts[c];
                }
            }
        }
        out
    }
}

/// A sign-composition ReLU: `x ↦ x · (1 + sgn(x)) / 2` with the sign
/// evaluated by the composite minimax polynomial of the chosen preset.
/// Unlike [`Square`] it preserves magnitudes, at the price of the
/// preset's multiplicative depth (a "KS" layer repeated per stage).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignRelu {
    /// Polynomial composition preset (depth/accuracy trade).
    pub preset: fxhenn_ckks::SignPreset,
    /// Bound `B` with inputs expected in `[-B, B]`; the evaluator folds
    /// operands into `[-1, 1]` by `1/B` before the composition.
    pub bound: f64,
}

impl SignRelu {
    /// Creates a sign-ReLU activation.
    ///
    /// # Panics
    ///
    /// Panics unless `bound` is positive and finite.
    pub fn new(preset: fxhenn_ckks::SignPreset, bound: f64) -> Self {
        assert!(bound.is_finite() && bound > 0.0, "bound must be positive");
        Self { preset, bound }
    }

    /// Plaintext forward pass: the same polynomial the evaluator runs,
    /// so HE/plaintext agreement is exact up to encryption noise.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        let data = input
            .data()
            .iter()
            .map(|&v| {
                let s = fxhenn_ckks::sign_reference_with_bound(v, self.preset, self.bound);
                v * (1.0 + s) / 2.0
            })
            .collect();
        Tensor::from_data(input.shape(), data)
    }
}

/// Any HE-friendly layer.
#[derive(Debug, Clone, PartialEq)]
pub enum Layer {
    /// Convolution (lowered as an "NKS" HE layer via offset packing).
    Conv(Conv2d),
    /// Square activation (a "KS" layer: CCmult + Relinearize + Rescale).
    Activation(Square),
    /// Dense layer (a "KS" layer: rotate-and-sum).
    Dense(Dense),
    /// Average pooling (linear; lowered as a sparse dense layer).
    AvgPool(AvgPool2d),
    /// Per-channel affine map (folded batch norm; an "NKS" layer).
    Scale(ChannelScale),
    /// Sign-composition ReLU (a deep "KS" layer: one composite sign
    /// stage per preset stage, then the ReLU selection product).
    SignAct(SignRelu),
}

impl Layer {
    /// Plaintext forward pass; dense layers flatten their input first.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        match self {
            Layer::Conv(c) => c.forward(input),
            Layer::Activation(s) => s.forward(input),
            Layer::Dense(d) => d.forward(&input.clone().flattened()),
            Layer::AvgPool(p) => p.forward(input),
            Layer::Scale(cs) => cs.forward(input),
            Layer::SignAct(r) => r.forward(input),
        }
    }

    /// A short display name in the paper's style (Cnv/Act/Fc/Pool/Bn).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Layer::Conv(_) => "Cnv",
            Layer::Activation(_) => "Act",
            Layer::Dense(_) => "Fc",
            Layer::AvgPool(_) => "Pool",
            Layer::Scale(_) => "Bn",
            Layer::SignAct(_) => "Sgn",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_identity_kernel_passes_through() {
        // 1x1 kernel with weight 1 and zero bias is the identity.
        let conv = Conv2d::new(1, 1, (1, 1), (1, 1), vec![1.0], vec![0.0]);
        let input = Tensor::from_data(&[1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(conv.forward(&input), input);
    }

    #[test]
    fn conv_computes_known_example() {
        // 2x2 all-ones kernel, stride 1 over a 3x3 image: sums of 2x2 windows.
        let conv = Conv2d::new(1, 1, (2, 2), (1, 1), vec![1.0; 4], vec![0.5]);
        let input = Tensor::from_data(
            &[1, 3, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
        );
        let out = conv.forward(&input);
        assert_eq!(out.shape(), &[1, 2, 2]);
        assert_eq!(out.data(), &[12.5, 16.5, 24.5, 28.5]);
    }

    #[test]
    fn conv_stride_reduces_output() {
        let conv = Conv2d::new(1, 1, (2, 2), (2, 2), vec![1.0; 4], vec![0.0]);
        assert_eq!(conv.output_size(6, 6), (3, 3));
        assert_eq!(conv.output_size(5, 5), (2, 2));
    }

    #[test]
    fn conv_multichannel_sums_channels() {
        let conv = Conv2d::new(1, 2, (1, 1), (1, 1), vec![2.0, 3.0], vec![0.0]);
        let input = Tensor::from_data(&[2, 1, 1], vec![5.0, 7.0]);
        let out = conv.forward(&input);
        assert_eq!(out.data(), &[2.0 * 5.0 + 3.0 * 7.0]);
    }

    #[test]
    fn conv_mac_count_matches_shape() {
        // LoLa-MNIST Cnv1: 5 maps, 5x5, stride 2, 28x28 input (paper
        // Table IV: 2.11e4 MACs).
        let conv = Conv2d::new(5, 1, (5, 5), (2, 2), vec![0.0; 125], vec![0.0; 5]);
        let macs = conv.mac_count(28, 28);
        assert_eq!(conv.output_size(28, 28), (12, 12));
        assert_eq!(macs, 5 * 12 * 12 * 25); // 18_000 = 1.8e4
    }

    #[test]
    fn square_squares_elementwise() {
        let sq = Square;
        let input = Tensor::from_data(&[3], vec![-2.0, 0.5, 3.0]);
        assert_eq!(sq.forward(&input).data(), &[4.0, 0.25, 9.0]);
    }

    #[test]
    fn dense_computes_matrix_vector_product() {
        let d = Dense::new(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], vec![0.5, -0.5]);
        let x = Tensor::from_data(&[3], vec![1.0, 1.0, 1.0]);
        let y = d.forward(&x);
        assert_eq!(y.data(), &[6.5, 14.5]);
        assert_eq!(d.mac_count(), 6);
    }

    #[test]
    fn layer_enum_dispatches_and_flattens() {
        let d = Dense::new(1, 4, vec![1.0; 4], vec![0.0]);
        let l = Layer::Dense(d);
        let input = Tensor::from_data(&[1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(l.forward(&input).data(), &[10.0]);
        assert_eq!(l.kind_name(), "Fc");
        assert_eq!(Layer::Activation(Square).kind_name(), "Act");
    }

    #[test]
    fn sign_relu_approximates_relu_away_from_zero() {
        let relu = SignRelu::new(fxhenn_ckks::SignPreset::Medium, 4.0);
        let input = Tensor::from_data(&[4], vec![-3.0, -0.9, 0.9, 3.0]);
        let out = relu.forward(&input);
        // Well outside the preset's dead zone the polynomial ReLU must
        // agree with exact ReLU to the preset's error bound.
        let expect = [0.0, 0.0, 0.9, 3.0];
        let tol = fxhenn_ckks::SignPreset::Medium.error_bound() * 4.0;
        for (got, want) in out.data().iter().zip(expect) {
            assert!((got - want).abs() <= tol, "relu({got}) vs {want}");
        }
        assert_eq!(Layer::SignAct(relu).kind_name(), "Sgn");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn sign_relu_rejects_nonpositive_bound() {
        SignRelu::new(fxhenn_ckks::SignPreset::Low, 0.0);
    }

    #[test]
    #[should_panic(expected = "weight count mismatch")]
    fn conv_rejects_bad_weights() {
        Conv2d::new(1, 1, (2, 2), (1, 1), vec![1.0], vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "input smaller than kernel")]
    fn conv_rejects_tiny_input() {
        let conv = Conv2d::new(1, 1, (5, 5), (1, 1), vec![0.0; 25], vec![0.0]);
        conv.output_size(3, 3);
    }
}

//! Wire-path benchmark: encode, decode and ingest-to-first-op latency
//! plus bytes copied per decode for the v1 owned layout versus the v2
//! aligned zero-copy layout, written to `BENCH_wire.json` at the
//! repository root.
//!
//! The claim the committed numbers back: v2 decode of an aligned
//! ciphertext frame copies **zero** residue bytes (counter-verified via
//! `fxhenn_wire_copied_bytes_total`), and the ingest-to-first-op path —
//! receive buffer → structural decode → range check → first homomorphic
//! add — is at least 2x faster than the v1 owned-decode path at
//! `(N = 8192, L = 4)`.
//!
//! Run with: `cargo run --release -p fxhenn-bench --bin bench_wire`
//!
//! Flags:
//! * `--tiny` — shrink the iteration counts (CI smoke; do not commit).
//! * `--out <path>` — write the JSON somewhere else.
//! * `--check <path>` — compare this run's shape (schema + entry
//!   names) against a committed baseline and exit non-zero on drift.
//!
//! Output schema `fxhenn-bench-wire/v1`:
//! `{ "schema", "tiny", "entries": [{ "name", "n", "levels",
//! "payload_bytes", "encode_us", "decode_us", "ingest_to_first_op_us",
//! "copied_bytes_per_decode" }] }`.

use fxhenn::obs;
use fxhenn::{ingest_ciphertext, push_frame, FrameCursor};
use fxhenn_ckks::wire::{encode_ciphertext_v2, AlignedBytes};
use fxhenn_ckks::serialize::{decode_ciphertext, encode_ciphertext};
use fxhenn_ckks::{
    register_wire_metrics, Ciphertext, CkksContext, CkksParams, Encryptor, Evaluator,
    KeyGenerator,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

/// One measured (point, layout) configuration.
struct Entry {
    name: String,
    n: usize,
    levels: usize,
    payload_bytes: usize,
    encode_us: f64,
    decode_us: f64,
    ingest_us: f64,
    copied_bytes_per_decode: u64,
}

/// The three paper-relevant (N, L) points: toy, mid, and the MNIST ring
/// at serving depth.
const POINTS: [(usize, usize); 3] = [(1024, 2), (4096, 3), (8192, 4)];

fn average_us<F: FnMut()>(iters: u64, mut f: F) -> f64 {
    f(); // warm-up: page in buffers, fill scratch pools
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / iters as f64
}

fn copied_delta<F: FnOnce()>(f: F) -> u64 {
    let c = obs::global().counter("fxhenn_wire_copied_bytes_total");
    let before = c.value();
    f();
    c.value() - before
}

fn fresh_ciphertext(ctx: &CkksContext, seed: u64) -> Ciphertext {
    let mut kg = KeyGenerator::new(ctx, StdRng::seed_from_u64(seed));
    let pk = kg.public_key();
    let mut enc = Encryptor::new(ctx, pk, StdRng::seed_from_u64(seed ^ 0xA5A5));
    let msg: Vec<f64> = (0..ctx.params().slot_count().min(64))
        .map(|i| (i as f64).mul_add(0.125, 0.5))
        .collect();
    enc.encrypt(&msg)
}

fn measure_point(n: usize, levels: usize, iters: u64) -> (Entry, Entry) {
    let params = CkksParams::new(n, levels, 30, 45).expect("bench points are valid");
    let ctx = CkksContext::new(params);
    let ct = fresh_ciphertext(&ctx, 7 + n as u64);

    // ---- v1: owned byte-at-a-time layout ----------------------------
    let v1_bytes = encode_ciphertext(&ct);
    let v1_encode_us = average_us(iters, || {
        black_box(encode_ciphertext(black_box(&ct)));
    });
    let v1_decode_us = average_us(iters, || {
        black_box(decode_ciphertext(black_box(&v1_bytes)).expect("round-trip"));
    });
    let v1_copied = copied_delta(|| {
        black_box(decode_ciphertext(&v1_bytes).expect("round-trip"));
    });
    // Ingest-to-first-op: bytes → owned decode → range check → add.
    let mut eval = Evaluator::new(&ctx);
    let v1_ingest_us = average_us(iters, || {
        let owned = decode_ciphertext(black_box(&v1_bytes)).expect("round-trip");
        ctx.validate_ciphertext(&owned).expect("honest bytes");
        black_box(eval.add(&owned, &owned).expect("same level"));
    });

    // ---- v2: aligned zero-copy layout -------------------------------
    let v2_frame = encode_ciphertext_v2(&ct);
    let v2_encode_us = average_us(iters, || {
        black_box(encode_ciphertext_v2(black_box(&ct)));
    });
    let v2_decode_us = average_us(iters, || {
        black_box(
            fxhenn_ckks::decode_ciphertext_v2(black_box(v2_frame.as_bytes()))
                .expect("round-trip"),
        );
    });
    let v2_copied = copied_delta(|| {
        black_box(fxhenn_ckks::decode_ciphertext_v2(v2_frame.as_bytes()).expect("round-trip"));
    });
    // Ingest-to-first-op: receive buffer → borrowed decode + range
    // check → add on the view, exactly the serve request path.
    let mut rx = AlignedBytes::new();
    push_frame(&mut rx, v2_frame.as_bytes());
    let v2_ingest_us = average_us(iters, || {
        let payload = FrameCursor::new(black_box(rx.as_bytes()))
            .next()
            .expect("one frame")
            .expect("well-formed");
        let view = ingest_ciphertext(&ctx, payload).expect("honest bytes");
        black_box(eval.add(&view, &view).expect("same level"));
    });

    let mk = |tag: &str, payload: usize, enc: f64, dec: f64, ing: f64, copied: u64| Entry {
        name: format!("wire_n{n}_l{levels}_{tag}"),
        n,
        levels,
        payload_bytes: payload,
        encode_us: enc,
        decode_us: dec,
        ingest_us: ing,
        copied_bytes_per_decode: copied,
    };
    (
        mk("v1", v1_bytes.len(), v1_encode_us, v1_decode_us, v1_ingest_us, v1_copied),
        mk("v2", v2_frame.len(), v2_encode_us, v2_decode_us, v2_ingest_us, v2_copied),
    )
}

fn render_json(entries: &[Entry], tiny: bool) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"fxhenn-bench-wire/v1\",\n");
    s.push_str(&format!("  \"tiny\": {tiny},\n"));
    s.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{ \"name\": \"{}\", \"n\": {}, \"levels\": {}, \"payload_bytes\": {}, \
             \"encode_us\": {:.2}, \"decode_us\": {:.2}, \"ingest_to_first_op_us\": {:.2}, \
             \"copied_bytes_per_decode\": {} }}{comma}\n",
            e.name, e.n, e.levels, e.payload_bytes, e.encode_us, e.decode_us, e.ingest_us,
            e.copied_bytes_per_decode
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Every string value keyed by `key` in a flat JSON document.
fn extract_strings(json: &str, key: &str) -> Vec<String> {
    let pat = format!("\"{key}\":");
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(i) = rest.find(&pat) {
        rest = &rest[i + pat.len()..];
        let Some(q1) = rest.find('"') else { break };
        let after = &rest[q1 + 1..];
        let Some(q2) = after.find('"') else { break };
        out.push(after[..q2].to_string());
        rest = &after[q2 + 1..];
    }
    out
}

/// Compares this run's shape against a committed baseline: same
/// schema, same entry names in the same order.
fn check_against(baseline_path: &str, entries: &[Entry]) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let schema = extract_strings(&text, "schema");
    if schema.first().map(String::as_str) != Some("fxhenn-bench-wire/v1") {
        return Err(format!(
            "baseline {baseline_path} schema mismatch: found {:?}, expected \
             \"fxhenn-bench-wire/v1\"",
            schema.first()
        ));
    }
    let committed = extract_strings(&text, "name");
    let measured: Vec<String> = entries.iter().map(|e| e.name.clone()).collect();
    if committed != measured {
        return Err(format!(
            "wire bench shape drifted from {baseline_path}:\n  committed: {committed:?}\n  \
             measured:  {measured:?}\nregenerate the baseline with `cargo run --release -p \
             fxhenn-bench --bin bench_wire` if the change is intentional"
        ));
    }
    Ok(())
}

fn main() {
    let mut tiny = false;
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tiny" => tiny = true,
            "--out" => out = Some(args.next().expect("--out needs a path")),
            "--check" => check = Some(args.next().expect("--check needs a path")),
            other => {
                eprintln!("unknown flag {other}; known: --tiny, --out <path>, --check <path>");
                std::process::exit(2);
            }
        }
    }

    register_wire_metrics();
    let mut entries: Vec<Entry> = Vec::with_capacity(POINTS.len() * 2);
    for &(n, levels) in &POINTS {
        let iters = if tiny {
            8
        } else {
            // More repetitions for the small payloads, a floor of 64
            // for the big ones — each sample stays well above timer
            // resolution either way.
            (1 << 22) / (n * levels).max(1) as u64 + 64
        };
        let (v1, v2) = measure_point(n, levels, iters);
        entries.push(v1);
        entries.push(v2);
    }

    for e in &entries {
        println!(
            "{:<18} {:>9} B   encode {:>8.2} µs   decode {:>8.2} µs   \
             ingest→op {:>8.2} µs   copied/decode {:>9} B",
            e.name, e.payload_bytes, e.encode_us, e.decode_us, e.ingest_us,
            e.copied_bytes_per_decode
        );
    }
    for pair in entries.chunks(2) {
        let (v1, v2) = (&pair[0], &pair[1]);
        println!(
            "n={} L={}: ingest-to-first-op v1/v2 = {:.2}x, copied bytes {} → {}",
            v1.n,
            v1.levels,
            v1.ingest_us / v2.ingest_us,
            v1.copied_bytes_per_decode,
            v2.copied_bytes_per_decode
        );
    }

    // The headline claims, counter-verified on the largest point.
    let v2_big = entries.last().expect("three points measured");
    let v1_big = &entries[entries.len() - 2];
    if !fxhenn_ckks::copy_fallback_forced() {
        assert_eq!(
            v2_big.copied_bytes_per_decode, 0,
            "v2 decode of an aligned frame must copy zero residue bytes"
        );
    }
    if !tiny {
        let speedup = v1_big.ingest_us / v2_big.ingest_us;
        assert!(
            speedup >= 2.0,
            "ingest-to-first-op must improve >= 2x over v1 at (N={}, L={}); measured {:.2}x",
            v2_big.n,
            v2_big.levels,
            speedup
        );
    }

    if let Some(baseline) = check {
        if let Err(msg) = check_against(&baseline, &entries) {
            eprintln!("{msg}");
            std::process::exit(1);
        }
        println!("wire bench shape matches {baseline}");
        return;
    }

    let path = out.unwrap_or_else(|| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_wire.json").to_string()
    });
    let json = render_json(&entries, tiny);
    std::fs::write(&path, &json).expect("write wire bench report");
    println!("wrote {path}");
}

//! Serving-path benchmark: sustained throughput and per-request latency
//! of the supervised batch driver at mixed deadlines, for a single
//! worker versus a worker pool, written to `BENCH_serve.json` at the
//! repository root.
//!
//! The claim the committed numbers back: the worker pool (supervision,
//! health scoring, round-robin selection) does not regress
//! single-tenant p99 relative to the single-worker driver — the driver
//! is synchronous, so the pool buys fault isolation, not parallelism,
//! and must cost nothing on the happy path.
//!
//! The busy-work entries alone leave w1 vs w4 within noise because each
//! request is trivially small, so the run also measures a *real-eval*
//! workload: every request is a v2 ciphertext frame ingested zero-copy
//! from an aligned receive buffer and pushed through an actual
//! square → relinearize → rescale chain — ciphertext-sized work, the
//! serve path the paper's deployment model actually runs.
//!
//! Run with: `cargo run --release -p fxhenn-bench --bin bench_serve`
//!
//! Flags:
//! * `--tiny` — shrink the request counts (CI smoke; do not commit).
//! * `--real-eval` — measure only the real-eval entries.
//! * `--out <path>` — write the JSON somewhere else.
//! * `--check <path>` — compare this run's shape (schema + entry
//!   names) against a committed baseline and exit non-zero on drift.
//!
//! Output schema `fxhenn-bench-serve/v2`:
//! `{ "schema", "tiny", "entries": [{ "name", "workers", "requests",
//! "completed", "cancelled", "req_per_s", "p50_us", "p99_us",
//! "budget_bits_min", "budget_bits_mean" }] }`. The budget fields are
//! the per-request terminal noise-budget bits recorded by the real-eval
//! entries (the tracked estimate after square → relinearize → rescale);
//! busy-work entries report `null`.

use fxhenn::math::budget::{Budget, Progress};
use fxhenn::serve::{
    AttemptError, BatchDriver, InferenceRequest, InferenceService, ServeConfig,
};
use fxhenn::{ingest_ciphertext, push_frame, FrameCursor};
use fxhenn_ckks::wire::{encode_ciphertext_v2, AlignedBytes};
use fxhenn_ckks::{CkksContext, CkksParams, Encryptor, Evaluator, KeyGenerator, RelinKey};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Per-request terminal noise-budget samples, shared across every
/// worker a driver builds so the entry can report the whole run.
#[derive(Default)]
struct BudgetStats {
    count: u64,
    sum: f64,
    min: f64,
}

impl BudgetStats {
    fn record(&mut self, bits: f64) {
        if self.count == 0 || bits < self.min {
            self.min = bits;
        }
        self.count += 1;
        self.sum += bits;
    }

    /// `(min, mean)` over recorded samples, or `None` if none were.
    fn summary(&self) -> Option<(f64, f64)> {
        if self.count == 0 {
            None
        } else {
            Some((self.min, self.sum / self.count as f64))
        }
    }
}

/// A deterministic busy-work backend: a fixed number of wrapping
/// multiplications per call (≈ tens of microseconds), with the same
/// cooperative budget check a real service performs.
struct BusyService {
    work_units: u64,
}

impl InferenceService for BusyService {
    type Output = u64;

    fn infer(&mut self, req: &InferenceRequest, budget: &Budget) -> Result<u64, AttemptError> {
        budget
            .check("busy-service", Progress::done(0))
            .map_err(AttemptError::Cancelled)?;
        let mut acc = req.id.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for i in 0..self.work_units {
            acc = acc.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(i);
        }
        black_box(acc);
        Ok(req.id)
    }
}

/// A real CKKS backend: each request is a length-prefixed v2 ciphertext
/// frame in an aligned receive buffer, ingested zero-copy (borrowed
/// decode + range check) and run through square → relinearize →
/// rescale — the full depth-1 evaluation chain at ciphertext size.
struct CkksEvalService {
    ctx: CkksContext,
    relin: RelinKey,
    rx: AlignedBytes,
    budgets: Arc<Mutex<BudgetStats>>,
}

impl CkksEvalService {
    fn build(seed: u64, budgets: Arc<Mutex<BudgetStats>>) -> Self {
        let params = CkksParams::new(1024, 3, 30, 45).expect("bench params are valid");
        let ctx = CkksContext::new(params);
        let mut kg = KeyGenerator::new(&ctx, StdRng::seed_from_u64(seed));
        let pk = kg.public_key();
        let relin = kg.relin_key();
        let mut enc = Encryptor::new(&ctx, pk, StdRng::seed_from_u64(seed ^ 0x5EED));
        let ct = enc.encrypt(&[0.5, -1.25, 2.0, 0.125]);
        let frame = encode_ciphertext_v2(&ct);
        let mut rx = AlignedBytes::with_byte_capacity(frame.len() + 16);
        push_frame(&mut rx, frame.as_bytes());
        Self {
            ctx,
            relin,
            rx,
            budgets,
        }
    }
}

impl InferenceService for CkksEvalService {
    type Output = u64;

    fn infer(&mut self, req: &InferenceRequest, budget: &Budget) -> Result<u64, AttemptError> {
        budget
            .check("ckks-eval-service", Progress::done(0))
            .map_err(AttemptError::Cancelled)?;
        let payload = FrameCursor::new(self.rx.as_bytes())
            .next()
            .and_then(Result::ok)
            .unwrap_or_default();
        let view = ingest_ciphertext(&self.ctx, payload)
            .map_err(|e| AttemptError::Permanent(format!("rejected request frame: {e}")))?;
        let mut eval = Evaluator::new(&self.ctx);
        let chained = eval
            .square(&view)
            .and_then(|sq| eval.relinearize(&sq, &self.relin))
            .and_then(|lin| eval.rescale(&lin))
            .map_err(|e| AttemptError::Permanent(format!("evaluation failed: {e}")))?;
        // Terminal health of this request's ciphertext: the tracked
        // noise budget the chain leaves behind.
        if let Ok(mut stats) = self.budgets.lock() {
            stats.record(chained.budget_bits());
        }
        black_box(chained);
        Ok(req.id)
    }
}

/// One measured configuration.
struct Entry {
    name: String,
    workers: usize,
    requests: u64,
    completed: u64,
    cancelled: u64,
    req_per_s: f64,
    p50_us: f64,
    p99_us: f64,
    /// `(min, mean)` terminal noise-budget bits over the run's
    /// requests; `None` for workloads that never touch a ciphertext.
    terminal_budget: Option<(f64, f64)>,
}

fn serve_config(workers: usize, hint: Duration) -> ServeConfig {
    ServeConfig {
        queue_capacity: 64,
        tenant_quota: 64,
        worker_count: workers,
        slip_threshold: u32::MAX, // latency probe, not degradation study
        service_time_hint: hint,
        ..ServeConfig::default()
    }
}

fn busy_driver(workers: usize) -> BatchDriver<BusyService> {
    let cfg = serve_config(workers, Duration::from_micros(100));
    BatchDriver::with_factory(cfg, Box::new(|| Ok(BusyService { work_units: 20_000 })))
        .expect("busy service always builds")
}

fn real_eval_driver(
    workers: usize,
    budgets: Arc<Mutex<BudgetStats>>,
) -> BatchDriver<CkksEvalService> {
    let cfg = serve_config(workers, Duration::from_micros(500));
    BatchDriver::with_factory(
        cfg,
        Box::new(move || Ok(CkksEvalService::build(11, budgets.clone()))),
    )
    .expect("ckks service always builds")
}

/// Mixed deadlines: every 8th request carries a zero deadline (storm
/// victim, must cancel), the rest are generous.
fn deadline_for(id: u64) -> Duration {
    if id % 8 == 7 {
        Duration::ZERO
    } else {
        Duration::from_secs(5)
    }
}

fn measure<S, F>(
    name: String,
    make_driver: F,
    workers: usize,
    throughput_requests: u64,
    latency_probes: u64,
) -> Entry
where
    S: InferenceService<Output = u64>,
    F: Fn() -> BatchDriver<S>,
{
    // Throughput: waves of up-to-capacity submissions, drained per wave.
    let mut d = make_driver();
    let wave = 64u64;
    let start = Instant::now();
    let mut id = 0u64;
    while id < throughput_requests {
        for _ in 0..wave.min(throughput_requests - id) {
            d.submit(InferenceRequest::new(id, "busy", deadline_for(id)))
                .expect("queue has room within one wave");
            id += 1;
        }
        d.run_queue();
    }
    let elapsed = start.elapsed().as_secs_f64();
    let report = d.report().clone();

    // Latency: one request per run_queue call so each sample is a true
    // end-to-end admission→outcome time; p-quantiles over completed
    // requests only (storm victims cancel by design).
    let mut lat = make_driver();
    let mut samples_us: Vec<f64> = Vec::with_capacity(latency_probes as usize);
    for pid in 0..latency_probes {
        let t = Instant::now();
        lat.submit(InferenceRequest::new(pid, "busy", deadline_for(pid)))
            .expect("empty queue admits");
        let outcomes = lat.run_queue();
        let us = t.elapsed().as_secs_f64() * 1e6;
        if outcomes.iter().all(|(_, o)| o.is_ok()) {
            samples_us.push(us);
        }
    }
    samples_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let quantile = |q: f64| -> f64 {
        if samples_us.is_empty() {
            return 0.0;
        }
        let idx = ((samples_us.len() as f64 - 1.0) * q).round() as usize;
        samples_us[idx]
    };

    Entry {
        name,
        workers,
        requests: throughput_requests,
        completed: report.completed,
        cancelled: report.cancelled,
        req_per_s: throughput_requests as f64 / elapsed,
        p50_us: quantile(0.50),
        p99_us: quantile(0.99),
        terminal_budget: None,
    }
}

fn render_json(entries: &[Entry], tiny: bool) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"fxhenn-bench-serve/v2\",\n");
    s.push_str(&format!("  \"tiny\": {tiny},\n"));
    s.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        let (bmin, bmean) = match e.terminal_budget {
            Some((min, mean)) => (format!("{min:.1}"), format!("{mean:.1}")),
            None => ("null".to_string(), "null".to_string()),
        };
        s.push_str(&format!(
            "    {{ \"name\": \"{}\", \"workers\": {}, \"requests\": {}, \
             \"completed\": {}, \"cancelled\": {}, \"req_per_s\": {:.1}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"budget_bits_min\": {bmin}, \
             \"budget_bits_mean\": {bmean} }}{comma}\n",
            e.name, e.workers, e.requests, e.completed, e.cancelled, e.req_per_s, e.p50_us,
            e.p99_us
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Every string value keyed by `key` in a flat JSON document.
fn extract_strings(json: &str, key: &str) -> Vec<String> {
    let pat = format!("\"{key}\":");
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(i) = rest.find(&pat) {
        rest = &rest[i + pat.len()..];
        let Some(q1) = rest.find('"') else { break };
        let after = &rest[q1 + 1..];
        let Some(q2) = after.find('"') else { break };
        out.push(after[..q2].to_string());
        rest = &after[q2 + 1..];
    }
    out
}

/// Compares this run's shape against a committed baseline: same
/// schema, same entry names in the same order.
fn check_against(baseline_path: &str, entries: &[Entry]) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let schema = extract_strings(&text, "schema");
    if schema.first().map(String::as_str) != Some("fxhenn-bench-serve/v2") {
        return Err(format!(
            "baseline {baseline_path} schema mismatch: found {:?}, expected \
             \"fxhenn-bench-serve/v2\"",
            schema.first()
        ));
    }
    // v2 baselines must carry the terminal-budget fields (the real-eval
    // entries record them; busy entries carry nulls).
    if !text.contains("\"budget_bits_min\"") || !text.contains("\"budget_bits_mean\"") {
        return Err(format!(
            "baseline {baseline_path} is missing the v2 terminal-budget fields \
             (budget_bits_min / budget_bits_mean)"
        ));
    }
    let committed = extract_strings(&text, "name");
    let measured: Vec<String> = entries.iter().map(|e| e.name.clone()).collect();
    if committed != measured {
        return Err(format!(
            "serve bench shape drifted from {baseline_path}:\n  committed: {committed:?}\n  \
             measured:  {measured:?}\nregenerate the baseline with `cargo run --release -p \
             fxhenn-bench --bin bench_serve` if the change is intentional"
        ));
    }
    Ok(())
}

fn main() {
    let mut tiny = false;
    let mut real_eval_only = false;
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tiny" => tiny = true,
            "--real-eval" => real_eval_only = true,
            "--out" => out = Some(args.next().expect("--out needs a path")),
            "--check" => check = Some(args.next().expect("--check needs a path")),
            other => {
                eprintln!(
                    "unknown flag {other}; known: --tiny, --real-eval, --out <path>, \
                     --check <path>"
                );
                std::process::exit(2);
            }
        }
    }

    let (throughput_requests, latency_probes) = if tiny { (256, 128) } else { (4_096, 1_024) };
    // The real-eval chain is ~three orders of magnitude heavier per
    // request than the busy spin, so it runs fewer requests for the
    // same statistical weight.
    let (real_requests, real_probes) = if tiny { (64, 32) } else { (512, 256) };

    let mut entries: Vec<Entry> = Vec::with_capacity(4);
    if !real_eval_only {
        for w in [1usize, 4] {
            entries.push(measure(
                format!("serve_mixed_deadlines_w{w}"),
                || busy_driver(w),
                w,
                throughput_requests,
                latency_probes,
            ));
        }
    }
    for w in [1usize, 4] {
        let budgets = Arc::new(Mutex::new(BudgetStats::default()));
        let handle = budgets.clone();
        let mut entry = measure(
            format!("serve_real_eval_w{w}"),
            move || real_eval_driver(w, handle.clone()),
            w,
            real_requests,
            real_probes,
        );
        entry.terminal_budget = budgets.lock().expect("budget stats lock").summary();
        entries.push(entry);
    }

    for e in &entries {
        let budget = match e.terminal_budget {
            Some((min, mean)) => format!("   budget min {min:.1} / mean {mean:.1} bits"),
            None => String::new(),
        };
        println!(
            "{:<28} {:>9.1} req/s   p50 {:>8.1} µs   p99 {:>8.1} µs   \
             ({} completed, {} cancelled){budget}",
            e.name, e.req_per_s, e.p50_us, e.p99_us, e.completed, e.cancelled
        );
    }
    // Entries come in (w1, w4) pairs per workload.
    for pair in entries.chunks(2) {
        let (single, pool) = (&pair[0], &pair[1]);
        println!(
            "{}: pool p99 / single p99 = {:.3} (pool must not regress the single-worker path)",
            pool.name,
            pool.p99_us / single.p99_us
        );
    }

    if let Some(baseline) = check {
        if let Err(msg) = check_against(&baseline, &entries) {
            eprintln!("{msg}");
            std::process::exit(1);
        }
        println!("serve bench shape matches {baseline}");
        return;
    }

    let path = out.unwrap_or_else(|| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json").to_string()
    });
    let json = render_json(&entries, tiny);
    std::fs::write(&path, &json).expect("write serve bench report");
    println!("wrote {path}");
}

//! Functional HE-CNN execution: runs a network homomorphically through
//! `fxhenn-ckks`, using exactly the lowering decisions of
//! [`crate::lowering`] (shared via [`plan_dense`]), so that the measured
//! operation trace can be compared one-to-one against the analytic plan
//! and the decrypted result against the plaintext network.
//!
//! Intended for functional verification at small ring degrees; paper-
//! scale workloads are costed analytically and simulated by
//! `fxhenn-sim`.

use crate::layers::{Conv2d, Layer};
use crate::lowering::{plan_dense, DensePlan, Layout};
use crate::model::Network;
use crate::packing::{conv_bias_vectors, conv_offset_pack, conv_offset_weights, CtLayout};
use crate::tensor::Tensor;
use fxhenn_ckks::{Ciphertext, Decryptor, Encryptor, Evaluator, GaloisKeys, RelinKey};
use rand::Rng;

/// The encrypted, offset-packed input of a network: one ciphertext per
/// (output-map group, kernel offset).
#[derive(Debug, Clone)]
pub struct EncryptedInput {
    /// `groups[g][i]` is the ciphertext for group `g`, kernel offset `i`.
    pub groups: Vec<Vec<Ciphertext>>,
}

/// The encrypted result of a network run plus the slot layout needed to
/// read the logits back out.
#[derive(Debug, Clone)]
pub struct EncryptedOutput {
    /// Output ciphertexts.
    pub cts: Vec<Ciphertext>,
    /// Where each logical output value lives.
    pub layout: CtLayout,
}

impl EncryptedOutput {
    /// Decrypts and gathers the logical output values.
    pub fn decrypt(&self, dec: &Decryptor<'_>) -> Vec<f64> {
        let decrypted: Vec<Vec<f64>> = self.cts.iter().map(|ct| dec.decrypt(ct)).collect();
        self.layout.gather(&decrypted)
    }
}

/// Encrypts an input image with the offset packing the network's first
/// convolution expects.
///
/// # Panics
///
/// Panics if the first layer is not a convolution or the image shape
/// mismatches.
pub fn encrypt_input<R: Rng>(
    net: &Network,
    image: &Tensor,
    enc: &mut Encryptor<'_, R>,
    slots: usize,
) -> EncryptedInput {
    let (_, first) = &net.layers()[0];
    let Layer::Conv(conv) = first else {
        panic!("LoLa packing expects a convolution front end");
    };
    let packed = conv_offset_pack(image, conv, slots);
    let groups = packed
        .iter()
        .map(|offsets| offsets.iter().map(|v| enc.encrypt(v)).collect())
        .collect();
    EncryptedInput { groups }
}

/// Runs networks homomorphically.
#[derive(Debug)]
pub struct HeCnnExecutor<'a> {
    ev: Evaluator<'a>,
    rk: &'a RelinKey,
    gks: &'a GaloisKeys,
}

struct RunState {
    cts: Vec<Ciphertext>,
    abstract_layout: Layout,
    concrete: CtLayout,
    shape: Vec<usize>,
}

impl<'a> HeCnnExecutor<'a> {
    /// Creates an executor over a context with the given evaluation keys.
    pub fn new(ctx: &'a fxhenn_ckks::CkksContext, rk: &'a RelinKey, gks: &'a GaloisKeys) -> Self {
        Self {
            ev: Evaluator::new(ctx),
            rk,
            gks,
        }
    }

    /// Starts recording the executed HE operations.
    pub fn start_trace(&mut self) {
        self.ev.start_trace();
    }

    /// Returns the recorded trace, if tracing was started.
    pub fn take_trace(&mut self) -> Option<fxhenn_ckks::OpTrace> {
        self.ev.take_trace()
    }

    /// Runs the full network on an encrypted input.
    ///
    /// # Panics
    ///
    /// Panics if the input packing does not match the network, a Galois
    /// key is missing, or the level budget is exhausted.
    pub fn run(&mut self, net: &Network, input: &EncryptedInput) -> EncryptedOutput {
        let slots = self.ev.context().degree() / 2;
        let mut state: Option<RunState> = None;
        let mut shape = net.input_shape().to_vec();

        for (idx, (name, layer)) in net.layers().iter().enumerate() {
            match layer {
                Layer::Conv(conv) if idx == 0 => {
                    state = Some(self.run_first_conv(conv, &shape, input, slots));
                    let s = state.as_ref().expect("just set");
                    shape = s.shape.clone();
                }
                Layer::Conv(conv) => {
                    let st = state.take().unwrap_or_else(|| panic!("{name} has no input"));
                    let (oh, ow) = conv.output_size(st.shape[1], st.shape[2]);
                    let d_out = conv.out_channels * oh * ow;
                    let in_shape = st.shape.clone();
                    let conv2 = conv.clone();
                    let next = self.run_dense_like(
                        st,
                        d_out,
                        slots,
                        &|k, v| conv_dense_weight(&conv2, &in_shape, k, v),
                        &|k| conv2.bias[k / (oh * ow)],
                    );
                    shape = vec![conv.out_channels, oh, ow];
                    state = Some(RunState { shape: shape.clone(), ..next });
                }
                Layer::Activation(_) => {
                    let st = state.take().unwrap_or_else(|| panic!("{name} has no input"));
                    state = Some(self.run_activation(st));
                }
                Layer::Dense(d) => {
                    let st = state.take().unwrap_or_else(|| panic!("{name} has no input"));
                    assert_eq!(
                        st.abstract_layout.value_count(),
                        d.in_features,
                        "dense input mismatch at {name}"
                    );
                    let d2 = d.clone();
                    let next = self.run_dense_like(
                        st,
                        d.out_features,
                        slots,
                        &|k, v| d2.weight(k, v),
                        &|k| d2.bias[k],
                    );
                    shape = vec![d.out_features];
                    state = Some(RunState { shape: shape.clone(), ..next });
                }
                Layer::AvgPool(pool) => {
                    let st = state.take().unwrap_or_else(|| panic!("{name} has no input"));
                    let in_shape = st.shape.clone();
                    let (oh, ow) = pool.output_size(in_shape[1], in_shape[2]);
                    let d_out = in_shape[0] * oh * ow;
                    let p2 = *pool;
                    let next = self.run_dense_like(
                        st,
                        d_out,
                        slots,
                        &|k, v| p2.dense_weight(&in_shape, k, v),
                        &|_| 0.0,
                    );
                    shape = vec![in_shape[0], oh, ow];
                    state = Some(RunState { shape: shape.clone(), ..next });
                }
                Layer::Scale(cs) => {
                    let st = state.take().unwrap_or_else(|| panic!("{name} has no input"));
                    state = Some(self.run_channel_scale(st, cs, slots));
                }
            }
        }

        let st = state.expect("network has layers");
        EncryptedOutput {
            cts: st.cts,
            layout: st.concrete,
        }
    }

    fn run_first_conv(
        &mut self,
        conv: &Conv2d,
        shape: &[usize],
        input: &EncryptedInput,
        slots: usize,
    ) -> RunState {
        let (oh, ow) = conv.output_size(shape[1], shape[2]);
        let positions = oh * ow;
        let weights = conv_offset_weights(conv, positions, slots);
        let biases = conv_bias_vectors(conv, positions, slots);
        assert_eq!(
            input.groups.len(),
            weights.len(),
            "input packing group count mismatch"
        );

        let mut out = Vec::with_capacity(weights.len());
        for (g, offsets) in input.groups.iter().enumerate() {
            assert_eq!(
                offsets.len(),
                conv.offset_count(),
                "input packing offset count mismatch"
            );
            let mut acc: Option<Ciphertext> = None;
            for (i, ct) in offsets.iter().enumerate() {
                let pw = self.ev.encode_for_mul(&weights[g][i], ct.level());
                let prod = self.ev.mul_plain(ct, &pw);
                let rs = self.ev.rescale(&prod);
                acc = Some(match acc {
                    None => rs,
                    Some(a) => self.ev.add(&a, &rs),
                });
            }
            let acc = acc.expect("at least one offset");
            let bias_pt = self.ev.encode_at(&biases[g], acc.scale(), acc.level());
            out.push(self.ev.add_plain(&acc, &bias_pt));
        }

        let n_values = conv.out_channels * positions;
        let concrete = crate::packing::conv_output_layout(conv, positions, slots);
        let abstract_layout = if out.len() == 1 {
            Layout::SingleContig { n: n_values }
        } else {
            Layout::MultiContig {
                n: n_values,
                cts: out.len(),
            }
        };
        RunState {
            cts: out,
            abstract_layout,
            concrete,
            shape: vec![conv.out_channels, oh, ow],
        }
    }

    fn run_activation(&mut self, st: RunState) -> RunState {
        let cts = st
            .cts
            .iter()
            .map(|ct| {
                let sq = self.ev.square(ct);
                let lin = self.ev.relinearize(&sq, self.rk);
                self.ev.rescale(&lin)
            })
            .collect();
        RunState { cts, ..st }
    }

    fn run_channel_scale(
        &mut self,
        st: RunState,
        cs: &crate::layers::ChannelScale,
        slots: usize,
    ) -> RunState {
        assert_eq!(st.shape.len(), 3, "channel scale needs a CHW shape");
        let per_map = st.shape[1] * st.shape[2];
        let cts = st
            .cts
            .iter()
            .enumerate()
            .map(|(m, ct)| {
                let mut factors = vec![0.0; slots];
                let mut shifts = vec![0.0; slots];
                for (v, &(ct_idx, slot)) in st.concrete.placements().iter().enumerate() {
                    if ct_idx == m {
                        let c = v / per_map;
                        factors[slot] = cs.factors[c];
                        shifts[slot] = cs.shifts[c];
                    }
                }
                let pf = self.ev.encode_for_mul(&factors, ct.level());
                let prod = self.ev.mul_plain(ct, &pf);
                let scaled = self.ev.rescale(&prod);
                let ps = self.ev.encode_at(&shifts, scaled.scale(), scaled.level());
                self.ev.add_plain(&scaled, &ps)
            })
            .collect();
        RunState { cts, ..st }
    }

    fn run_dense_like(
        &mut self,
        st: RunState,
        d_out: usize,
        slots: usize,
        weight: &dyn Fn(usize, usize) -> f64,
        bias: &dyn Fn(usize) -> f64,
    ) -> RunState {
        let plan = plan_dense(&st.abstract_layout, d_out, slots);
        let (round_cts, out_abstract, out_concrete) = if plan.stacked {
            self.dense_stacked(&st, d_out, slots, &plan, weight, bias)
        } else {
            self.dense_per_output(&st, d_out, slots, &plan, weight, bias)
        };

        if plan.consolidate {
            let (ct, abstract_layout, concrete) = self.consolidate(
                &round_cts,
                d_out,
                slots,
                &plan,
                &out_abstract,
            );
            RunState {
                cts: vec![ct],
                abstract_layout,
                concrete,
                shape: st.shape,
            }
        } else {
            RunState {
                cts: round_cts,
                abstract_layout: out_abstract,
                concrete: out_concrete,
                shape: st.shape,
            }
        }
    }

    fn dense_stacked(
        &mut self,
        st: &RunState,
        d_out: usize,
        slots: usize,
        plan: &DensePlan,
        weight: &dyn Fn(usize, usize) -> f64,
        bias: &dyn Fn(usize) -> f64,
    ) -> (Vec<Ciphertext>, Layout, CtLayout) {
        let d_in = st.abstract_layout.value_count();
        // Replicate the input into `copies` stacked copies.
        let mut x = st.cts[0].clone();
        for &shift in &plan.stack_shifts {
            let rot = self.ev.rotate(&x, shift, self.gks);
            x = self.ev.add(&x, &rot);
        }
        let mut round_cts = Vec::with_capacity(plan.rounds);
        for r in 0..plan.rounds {
            // Weight vector: output r·copies+s in segment s.
            let mut wv = vec![0.0; slots];
            for s in 0..plan.copies {
                let k = r * plan.copies + s;
                if k >= d_out {
                    break;
                }
                for v in 0..d_in {
                    wv[s * plan.seg + v] = weight(k, v);
                }
            }
            let pw = self.ev.encode_for_mul(&wv, x.level());
            let prod = self.ev.mul_plain(&x, &pw);
            let mut acc = self.ev.rescale(&prod);
            for &shift in &plan.sum_shifts {
                let rot = self.ev.rotate(&acc, shift, self.gks);
                acc = self.ev.add(&acc, &rot);
            }
            let mut bv = vec![0.0; slots];
            for s in 0..plan.copies {
                let k = r * plan.copies + s;
                if k < d_out {
                    bv[s * plan.seg] = bias(k);
                }
            }
            let bias_pt = self.ev.encode_at(&bv, acc.scale(), acc.level());
            round_cts.push(self.ev.add_plain(&acc, &bias_pt));
        }
        let abstract_layout = Layout::Segmented {
            n: d_out,
            copies: plan.copies,
            seg: plan.seg,
            cts: plan.rounds,
        };
        let concrete = CtLayout::segmented(d_out, plan.copies, plan.seg, slots);
        (round_cts, abstract_layout, concrete)
    }

    fn dense_per_output(
        &mut self,
        st: &RunState,
        d_out: usize,
        slots: usize,
        plan: &DensePlan,
        weight: &dyn Fn(usize, usize) -> f64,
        bias: &dyn Fn(usize) -> f64,
    ) -> (Vec<Ciphertext>, Layout, CtLayout) {
        let mut round_cts = Vec::with_capacity(d_out);
        for k in 0..d_out {
            let mut prod_acc: Option<Ciphertext> = None;
            for (m, ct) in st.cts.iter().enumerate() {
                let mut wv = vec![0.0; slots];
                for (v, &(ct_idx, slot)) in st.concrete.placements().iter().enumerate() {
                    if ct_idx == m {
                        wv[slot] = weight(k, v);
                    }
                }
                let pw = self.ev.encode_for_mul(&wv, ct.level());
                let prod = self.ev.mul_plain(ct, &pw);
                prod_acc = Some(match prod_acc {
                    None => prod,
                    Some(a) => self.ev.add(&a, &prod),
                });
            }
            let mut acc = self.ev.rescale(&prod_acc.expect("at least one input ct"));
            for &shift in &plan.sum_shifts {
                let rot = self.ev.rotate(&acc, shift, self.gks);
                acc = self.ev.add(&acc, &rot);
            }
            let mut bv = vec![0.0; slots];
            bv[0] = bias(k);
            let bias_pt = self.ev.encode_at(&bv, acc.scale(), acc.level());
            round_cts.push(self.ev.add_plain(&acc, &bias_pt));
        }
        let abstract_layout = Layout::PerOutput { n: d_out };
        let concrete = CtLayout::new(slots, d_out, (0..d_out).map(|k| (k, 0)).collect());
        (round_cts, abstract_layout, concrete)
    }

    fn consolidate(
        &mut self,
        round_cts: &[Ciphertext],
        d_out: usize,
        slots: usize,
        plan: &DensePlan,
        out_abstract: &Layout,
    ) -> (Ciphertext, Layout, CtLayout) {
        let mut acc: Option<Ciphertext> = None;
        for (r, ct) in round_cts.iter().enumerate() {
            // Mask keeps only this round's valid output slots.
            let mut mask = vec![0.0; slots];
            match out_abstract {
                Layout::Segmented { copies, seg, .. } => {
                    for s in 0..*copies {
                        if r * copies + s < d_out {
                            mask[s * seg] = 1.0;
                        }
                    }
                }
                Layout::PerOutput { .. } => mask[0] = 1.0,
                other => panic!("cannot consolidate layout {other:?}"),
            }
            let pw = self.ev.encode_for_mul(&mask, ct.level());
            let prod = self.ev.mul_plain(ct, &pw);
            let mut masked = self.ev.rescale(&prod);
            if r > 0 {
                masked = self
                    .ev
                    .rotate(&masked, plan.consolidate_shifts[r - 1], self.gks);
            }
            acc = Some(match acc {
                None => masked,
                Some(a) => self.ev.add(&a, &masked),
            });
        }
        let (copies, seg) = match out_abstract {
            Layout::Segmented { copies, seg, .. } => (*copies, *seg),
            Layout::PerOutput { .. } => (1usize, 1usize),
            other => panic!("cannot consolidate layout {other:?}"),
        };
        let abstract_layout = Layout::ScatteredSingle {
            n: d_out,
            copies,
            seg,
            rounds: plan.rounds,
        };
        let placements = (0..d_out)
            .map(|k| (0usize, (k % copies) * seg + k / copies))
            .collect();
        let concrete = CtLayout::new(slots, 1, placements);
        (
            acc.expect("at least one round"),
            abstract_layout,
            concrete,
        )
    }
}

/// The weight a mid-network convolution contributes between flattened
/// input value `v` and flattened output value `k`, treating the conv as
/// a (sparse) dense matrix.
pub fn conv_dense_weight(conv: &Conv2d, in_shape: &[usize], k: usize, v: usize) -> f64 {
    let (h, w) = (in_shape[1], in_shape[2]);
    let (oh, ow) = conv.output_size(h, w);
    let map = k / (oh * ow);
    let rest = k % (oh * ow);
    let oy = rest / ow;
    let ox = rest % ow;

    let c = v / (h * w);
    let rest_v = v % (h * w);
    let y = rest_v / w;
    let x = rest_v % w;

    let base_y = oy * conv.stride.0;
    let base_x = ox * conv.stride.1;
    if y >= base_y && y < base_y + conv.kernel.0 && x >= base_x && x < base_x + conv.kernel.1 {
        conv.weight(map, c, y - base_y, x - base_x)
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Square};
    use crate::lowering::lower_network;
    use crate::model::{synthetic_input, toy_mnist_like, Network};
    use fxhenn_ckks::{CkksContext, CkksParams, KeyGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Rig {
        ctx: CkksContext,
    }

    struct RigKeys {
        pk: fxhenn_ckks::PublicKey,
        sk: fxhenn_ckks::SecretKey,
        rk: RelinKey,
        gks: GaloisKeys,
    }

    fn rig_for(net: &Network) -> (Rig, RigKeys) {
        let ctx = CkksContext::new(CkksParams::insecure_toy(7));
        let prog = lower_network(net, ctx.degree(), ctx.max_level());
        let mut kg = KeyGenerator::new(&ctx, StdRng::seed_from_u64(31));
        let keys = RigKeys {
            pk: kg.public_key(),
            sk: kg.secret_key(),
            rk: kg.relin_key(),
            gks: kg.galois_keys(&prog.required_rotations()),
        };
        (Rig { ctx }, keys)
    }

    fn run_and_compare(net: &Network, tol: f64) {
        let (rig, keys) = rig_for(net);
        let image = synthetic_input(net, 7);
        let expected = net.forward(&image);

        let mut enc = Encryptor::new(&rig.ctx, keys.pk.clone(), StdRng::seed_from_u64(32));
        let input = encrypt_input(net, &image, &mut enc, rig.ctx.degree() / 2);
        let mut exec = HeCnnExecutor::new(&rig.ctx, &keys.rk, &keys.gks);
        let out = exec.run(net, &input);

        let dec = Decryptor::new(&rig.ctx, keys.sk.clone());
        let got = out.decrypt(&dec);
        assert_eq!(got.len(), expected.len());
        for (i, (&g, &e)) in got.iter().zip(expected.data()).enumerate() {
            assert!(
                (g - e).abs() < tol,
                "output {i}: HE {g} vs plaintext {e} (tol {tol})"
            );
        }
    }

    #[test]
    fn conv_only_network_matches_plaintext() {
        let mut net_src = toy_mnist_like(11);
        let layers = vec![net_src.layers()[0].clone()];
        net_src = Network::new("conv-only", &[1, 9, 9], layers);
        run_and_compare(&net_src, 1e-2);
    }

    #[test]
    fn conv_act_matches_plaintext() {
        let src = toy_mnist_like(12);
        let layers = src.layers()[..2].to_vec();
        let net = Network::new("conv-act", &[1, 9, 9], layers);
        run_and_compare(&net, 1e-2);
    }

    #[test]
    fn conv_act_fc_matches_plaintext() {
        let src = toy_mnist_like(13);
        let layers = src.layers()[..3].to_vec();
        let net = Network::new("conv-act-fc", &[1, 9, 9], layers);
        run_and_compare(&net, 5e-2);
    }

    #[test]
    fn full_toy_network_matches_plaintext() {
        run_and_compare(&toy_mnist_like(14), 0.1);
    }

    #[test]
    fn measured_trace_matches_analytic_plan() {
        let net = toy_mnist_like(15);
        let (rig, keys) = rig_for(&net);
        let prog = lower_network(&net, rig.ctx.degree(), rig.ctx.max_level());

        let image = synthetic_input(&net, 7);
        let mut enc = Encryptor::new(&rig.ctx, keys.pk.clone(), StdRng::seed_from_u64(33));
        let input = encrypt_input(&net, &image, &mut enc, rig.ctx.degree() / 2);
        let mut exec = HeCnnExecutor::new(&rig.ctx, &keys.rk, &keys.gks);
        exec.start_trace();
        let _ = exec.run(&net, &input);
        let measured = exec.take_trace().expect("trace started");

        let planned = prog.total_trace();
        assert_eq!(
            measured.hop_count(),
            planned.hop_count(),
            "HOP count: measured vs planned"
        );
        assert_eq!(
            measured.key_switch_count(),
            planned.key_switch_count(),
            "KS count: measured vs planned"
        );
        for kind in fxhenn_ckks::HeOpKind::ALL {
            assert_eq!(
                measured.count_of(kind),
                planned.count_of(kind),
                "count of {kind}"
            );
        }
        // Levels must agree as multisets of (kind, level): the executor
        // interleaves ops that the plan records in batches.
        let key = |r: &fxhenn_ckks::HeOpRecord| (r.kind, r.level);
        let mut m: Vec<_> = measured.records().iter().map(key).collect();
        let mut p: Vec<_> = planned.records().iter().map(key).collect();
        m.sort_unstable();
        p.sort_unstable();
        assert_eq!(m, p, "per-level operation multisets must agree");
    }

    #[test]
    fn mid_network_conv_executes_as_dense() {
        // Cnv -> Act -> Cnv (the CIFAR10 structure) at toy scale.
        let mut rng_net = toy_mnist_like(16);
        let conv1 = rng_net.layers()[0].clone();
        let conv2 = Conv2d::new(
            2,
            2,
            (2, 2),
            (1, 1),
            vec![0.25, -0.5, 0.125, 0.375, -0.25, 0.5, 0.0625, -0.125,
                 0.3, -0.2, 0.15, 0.05, -0.1, 0.2, 0.25, -0.3],
            vec![0.1, -0.1],
        );
        let net = Network::new(
            "conv-act-conv",
            &[1, 9, 9],
            vec![
                conv1,
                ("Act1".to_string(), Layer::Activation(Square)),
                ("Cnv2".to_string(), Layer::Conv(conv2)),
            ],
        );
        rng_net = net.clone();
        run_and_compare(&rng_net, 0.1);
    }

    #[test]
    fn consolidation_path_matches_plaintext() {
        // A dense layer with many outputs (> CONSOLIDATE_THRESHOLD) from a
        // multi-ct... use per-output path by making input non-stackable:
        // d_in large relative to slots/2 = 256.
        let mut rng = StdRng::seed_from_u64(44);
        use rand::Rng as _;
        let d_in = 8 * 36; // conv out: 8 maps of 6x6 = 288 > 256 -> not stackable
        let d_out = 40; // > CONSOLIDATE_THRESHOLD
        let conv = Conv2d::new(
            8,
            1,
            (3, 3),
            (1, 1),
            (0..72).map(|_| rng.gen_range(-0.3..0.3)).collect(),
            (0..8).map(|_| rng.gen_range(-0.1..0.1)).collect(),
        );
        let fc = Dense::new(
            d_out,
            d_in,
            (0..d_out * d_in).map(|_| rng.gen_range(-0.05..0.05)).collect(),
            (0..d_out).map(|_| rng.gen_range(-0.1..0.1)).collect(),
        );
        let net = Network::new(
            "wide-fc",
            &[1, 8, 8],
            vec![
                ("Cnv1".to_string(), Layer::Conv(conv)),
                ("Fc1".to_string(), Layer::Dense(fc)),
            ],
        );
        run_and_compare(&net, 0.1);
    }

    #[test]
    fn logits_argmax_agrees_with_plaintext() {
        let net = toy_mnist_like(17);
        let (rig, keys) = rig_for(&net);
        let image = synthetic_input(&net, 9);
        let expected = net.forward(&image);

        let mut enc = Encryptor::new(&rig.ctx, keys.pk.clone(), StdRng::seed_from_u64(34));
        let input = encrypt_input(&net, &image, &mut enc, rig.ctx.degree() / 2);
        let mut exec = HeCnnExecutor::new(&rig.ctx, &keys.rk, &keys.gks);
        let out = exec.run(&net, &input);
        let dec = Decryptor::new(&rig.ctx, keys.sk);
        let got = out.decrypt(&dec);
        let he_argmax = got
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(he_argmax, expected.argmax(), "classification must agree");
    }
}

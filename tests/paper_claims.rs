//! The paper's quantitative claims, re-derived from our models: each
//! test names the table/figure it checks and the tolerance applied.
//! EXPERIMENTS.md narrates the same comparisons.

use fxhenn::dse::{allocate_baseline, evaluate_baseline, explore_default};
use fxhenn::hw::buffers::module_bram_blocks;
use fxhenn::hw::calibration::PAPER_TABLE1;
use fxhenn::hw::{HeOpModule, ModuleConfig, OpClass};
use fxhenn::nn::{fxhenn_cifar10, fxhenn_mnist, lower_network};
use fxhenn::sim::{lola_reference, Dataset, PAPER_FXHENN_ROWS};
use fxhenn::{generate_accelerator, CkksParams, FpgaDevice};

const N: usize = 8192;
const L: usize = 7;

#[test]
fn table1_module_latencies_within_25_percent() {
    for &(class, nc, _dsp, _bram, paper_ms) in PAPER_TABLE1 {
        let m = HeOpModule::new(
            class,
            ModuleConfig {
                nc_ntt: nc,
                p_intra: 1,
                p_inter: 1,
            },
        );
        let ours_ms = m.op_latency_cycles(L, N) as f64 / 250e3;
        let rel = (ours_ms - paper_ms).abs() / paper_ms;
        assert!(
            rel < 0.25,
            "Table I {class:?} nc={nc}: {ours_ms:.3} vs {paper_ms} ms"
        );
    }
}

#[test]
fn table1_module_bram_within_12_percent() {
    for &(class, nc, _dsp, paper_pct, _lat) in PAPER_TABLE1 {
        let ours_pct = module_bram_blocks(class, L, N, 30, nc) as f64 / 912.0 * 100.0;
        assert!(
            (ours_pct - paper_pct).abs() / paper_pct < 0.12,
            "Table I {class:?} nc={nc}: {ours_pct:.2}% vs {paper_pct}%"
        );
    }
}

#[test]
fn table2_aggregate_bram_demand_exceeds_chip() {
    // Table II's key observation: summed per-layer BRAM demand is 206% of
    // ACU9EG while DSP sits under 100%.
    let prog = lower_network(&fxhenn_mnist(1), N, 7);
    let device = FpgaDevice::acu9eg();
    let design = allocate_baseline(&prog, &device, 30);
    let eval = evaluate_baseline(&prog, &design, &device, 30);
    let bram_pct: f64 = eval
        .per_layer_bram_demand
        .iter()
        .map(|&b| b as f64 / 912.0 * 100.0)
        .sum();
    assert!(
        bram_pct > 140.0,
        "aggregate BRAM demand = {bram_pct:.0}% (paper 206%)"
    );
    let dsp_pct = eval.dsp_total as f64 / 2520.0 * 100.0;
    assert!(
        dsp_pct <= 100.0,
        "baseline DSP = {dsp_pct:.0}% (paper 65%, must fit)"
    );
}

#[test]
fn table4_he_macs_orders_of_magnitude() {
    // Table IV: Cnv1 2.11e4 plain MACs vs 1.198e8 HE MACs; Fc1 8.45e4 vs
    // 1.551e9. The inflation factor is 3-4 orders of magnitude and Fc1's
    // factor exceeds Cnv1's.
    let prog = lower_network(&fxhenn_mnist(1), N, 7);
    let cnv1 = prog.layer("Cnv1").unwrap();
    let fc1 = prog.layer("Fc1").unwrap();
    let cnv1_factor = cnv1.he_macs(N) as f64 / 21_125.0;
    let fc1_factor = fc1.he_macs(N) as f64 / 84_500.0;
    assert!(
        (1e3..1e5).contains(&cnv1_factor),
        "Cnv1 inflation = {cnv1_factor:.0}x (paper ~5700x)"
    );
    assert!(
        (1e3..1e6).contains(&fc1_factor),
        "Fc1 inflation = {fc1_factor:.0}x (paper ~18400x)"
    );
    assert!(
        fc1_factor > cnv1_factor,
        "KS-heavy Fc1 inflates more than Cnv1 (paper: 4x -> 12.95x gap)"
    );
}

#[test]
fn table5_intra_parallelism_tradeoff_reproduces() {
    // Table V: giving Fc1 the intra-parallelism (config A) beats giving
    // it to Cnv1 (config B) by ~2x at comparable resources.
    use fxhenn::hw::layer::layer_latency_seconds;
    use fxhenn::hw::ModuleSet;
    let prog = lower_network(&fxhenn_mnist(1), N, 7);
    let cnv1 = prog.layer("Cnv1").unwrap();
    let fc1 = prog.layer("Fc1").unwrap();

    // Config A: Fc1's KeySwitch gets intra = 3, Cnv1's Rescale stays 1.
    let mut a = ModuleSet::minimal();
    a.set(
        OpClass::KeySwitch,
        ModuleConfig {
            nc_ntt: 2,
            p_intra: 3,
            p_inter: 1,
        },
    );
    let lat_a = layer_latency_seconds(cnv1, &a, N, 250.0)
        + layer_latency_seconds(fc1, &a, N, 250.0);

    // Config B: Cnv1's Rescale gets intra = 4, Fc1's KeySwitch stays 1.
    let mut b = ModuleSet::minimal();
    b.set(
        OpClass::Rescale,
        ModuleConfig {
            nc_ntt: 2,
            p_intra: 4,
            p_inter: 1,
        },
    );
    let lat_b = layer_latency_seconds(cnv1, &b, N, 250.0)
        + layer_latency_seconds(fc1, &b, N, 250.0);

    let ratio = lat_b / lat_a;
    assert!(
        ratio > 1.5,
        "config A speedup over B = {ratio:.2}x (paper 2.07x)"
    );
}

#[test]
fn table6_workload_gap_between_networks() {
    let m = lower_network(&fxhenn_mnist(1), 8192, 7);
    let c = lower_network(&fxhenn_cifar10(1), 16384, 7);
    // Paper: 0.83e3 vs 82.73e3 HOPs; 15.57 MB vs 2471 MB model size.
    let hop_ratio = c.hop_count() as f64 / m.hop_count() as f64;
    assert!((40.0..200.0).contains(&hop_ratio), "HOP ratio {hop_ratio:.0}");
    let size_ratio = c.model_size_bytes() as f64 / m.model_size_bytes() as f64;
    assert!(
        (50.0..400.0).contains(&size_ratio),
        "model size ratio {size_ratio:.0} (paper ~159x)"
    );
}

#[test]
fn table7_fxhenn_rows_reproduce_in_shape() {
    // Our simulated latencies for all four (model, device) pairs must
    // order and scale like the paper's 0.19/0.24/54.1/254 rows.
    let mnist = fxhenn_mnist(1);
    let cifar = fxhenn_cifar10(1);
    let pm = CkksParams::fxhenn_mnist();
    let pc = CkksParams::fxhenn_cifar10();

    let m9 = generate_accelerator(&mnist, &pm, &FpgaDevice::acu9eg()).unwrap();
    let m15 = generate_accelerator(&mnist, &pm, &FpgaDevice::acu15eg()).unwrap();
    let c9 = generate_accelerator(&cifar, &pc, &FpgaDevice::acu9eg()).unwrap();
    let c15 = generate_accelerator(&cifar, &pc, &FpgaDevice::acu15eg()).unwrap();

    // Within 3x of each paper row.
    for (ours, (_, _, paper)) in [
        (m15.latency_s(), PAPER_FXHENN_ROWS[0]),
        (m9.latency_s(), PAPER_FXHENN_ROWS[1]),
        (c15.latency_s(), PAPER_FXHENN_ROWS[2]),
        (c9.latency_s(), PAPER_FXHENN_ROWS[3]),
    ] {
        let ratio = ours / paper;
        assert!(
            (0.33..=3.0).contains(&ratio),
            "{ours:.3}s vs paper {paper}s (ratio {ratio:.2})"
        );
    }
    // Ordering: MNIST << CIFAR; 15EG <= 9EG.
    assert!(m15.latency_s() <= m9.latency_s() * 1.01);
    assert!(c15.latency_s() <= c9.latency_s() * 1.01);
    assert!(c9.latency_s() > m9.latency_s() * 30.0);
}

#[test]
fn table9_fxhenn_beats_baseline_with_reuse() {
    // Table IX: FxHENN 0.24 s vs baseline 1.17 s (4.88x), with aggregate
    // utilization above 100% thanks to module/buffer reuse.
    let prog = lower_network(&fxhenn_mnist(1), N, 7);
    let device = FpgaDevice::acu9eg();

    let base_design = allocate_baseline(&prog, &device, 30);
    let base = evaluate_baseline(&prog, &base_design, &device, 30);

    let fx = explore_default(&prog, &device, 30).best.unwrap();
    let speedup = base.latency_s / fx.eval.latency_s;
    assert!(
        speedup > 2.5,
        "FxHENN vs baseline = {speedup:.2}x (paper 4.88x)"
    );

    let aggregate_bram_pct = fx.eval.aggregate_bram() as f64 / 912.0 * 100.0;
    assert!(
        aggregate_bram_pct > 100.0,
        "aggregate BRAM = {aggregate_bram_pct:.0}% (paper 170.67%)"
    );
}

#[test]
fn headline_speedups_vs_lola_hold() {
    // Abstract: "up to 13.49X speedup ... and 1187.12X energy efficiency".
    // We require the same shape: CIFAR10-on-ACU15EG is the best speedup
    // and it exceeds 2x; energy efficiency exceeds 100x everywhere.
    let mnist = fxhenn_mnist(1);
    let cifar = fxhenn_cifar10(1);
    let m15 = generate_accelerator(&mnist, &CkksParams::fxhenn_mnist(), &FpgaDevice::acu15eg())
        .unwrap();
    let c15 = generate_accelerator(&cifar, &CkksParams::fxhenn_cifar10(), &FpgaDevice::acu15eg())
        .unwrap();

    let lola_m = lola_reference(Dataset::Mnist);
    let lola_c = lola_reference(Dataset::Cifar10);
    let d15 = FpgaDevice::acu15eg();

    let sp_m = m15.measured(&d15).speedup_over(&lola_m);
    let sp_c = c15.measured(&d15).speedup_over(&lola_c);
    assert!(sp_m > 2.0, "MNIST speedup {sp_m:.1}x");
    assert!(sp_c > 2.0, "CIFAR10 speedup {sp_c:.1}x");

    let eff_m = m15.measured(&d15).energy_efficiency_over(&lola_m);
    let eff_c = c15.measured(&d15).energy_efficiency_over(&lola_c);
    assert!(eff_m > 100.0, "MNIST energy efficiency {eff_m:.0}x");
    assert!(eff_c > 100.0, "CIFAR10 energy efficiency {eff_c:.0}x");
}

//! Design generation for the heavyweight FxHENN-CIFAR10 network
//! (80 000+ HE operations, gigabytes of encoded weights) on both ALINX
//! boards — the workload where the ACU15EG's URAM pool pays off
//! (paper Sec. VII-B: 2.87x vs 13.49x speedup over LoLa).
//!
//! Run with: `cargo run --release --example cifar10_design`

use fxhenn::ckks::CkksParams;
use fxhenn::nn::{fxhenn_cifar10, lower_network};
use fxhenn::report::module_table;
use fxhenn::sim::{lola_reference, Dataset};
use fxhenn::{generate_accelerator, FpgaDevice};

fn main() {
    let network = fxhenn_cifar10(42);
    let params = CkksParams::fxhenn_cifar10();

    println!("== FxHENN-CIFAR10 workload ==");
    let program = lower_network(&network, params.degree(), params.levels());
    println!(
        "HOPs: {} ({:.2}e3, paper 82.73e3) | KS: {} | model size: {:.2} GB (paper 2.41 GB)",
        program.hop_count(),
        program.hop_count() as f64 / 1e3,
        program.key_switch_count(),
        program.model_size_bytes() as f64 / (1024.0 * 1024.0 * 1024.0),
    );
    for plan in &program.layers {
        println!(
            "  {:<5} [{}] {:>6} HOPs, {:>6} KS, level {} -> {}",
            plan.name,
            plan.class,
            plan.hop_count(),
            plan.key_switch_count(),
            plan.level_in,
            plan.level_out
        );
    }

    println!();
    let lola = lola_reference(Dataset::Cifar10);
    for device in [FpgaDevice::acu9eg(), FpgaDevice::acu15eg()] {
        let r = generate_accelerator(&network, &params, &device).expect("feasible design");
        let m = r.measured(&device);
        println!(
            "== {} == {:.1} s/inference | {:.2}x speedup vs LoLa ({} s) | {:.0}x energy",
            device.name(),
            r.latency_s(),
            m.speedup_over(&lola),
            lola.latency_s,
            m.energy_efficiency_over(&lola),
        );
        print!("{}", module_table(&r));
    }
    println!();
    println!("paper reference: ACU9EG 254 s (2.87x), ACU15EG 54.1 s (13.49x)");
}

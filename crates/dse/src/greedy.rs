//! A greedy (steepest-ascent hill climbing) alternative to the
//! exhaustive DSE.
//!
//! The paper's exhaustive search is fine for its ~10⁴-point space but
//! scales multiplicatively with every new module class or parallelism
//! axis. The greedy explorer starts from the minimal design and
//! repeatedly applies the single feasible upgrade with the best latency
//! improvement; on the paper's workloads it reaches the same optimum in
//! two orders of magnitude fewer evaluations (see the tests), making it
//! the practical choice for richer design spaces.

use crate::design::{DesignPoint, ProgramCost};
use crate::explore::ExploredPoint;
use fxhenn_hw::{FpgaDevice, ModuleConfig, OpClass};
use fxhenn_nn::HeCnnProgram;

/// Outcome of a greedy exploration.
#[derive(Debug, Clone, PartialEq)]
pub struct GreedyResult {
    /// The local optimum reached (None only if even the minimal design
    /// violates the DSP constraint).
    pub best: Option<ExploredPoint>,
    /// Design points evaluated (greedy's cost metric).
    pub points_evaluated: usize,
    /// Upgrade steps applied.
    pub steps: usize,
}

/// Single-step upgrades of one module configuration.
fn upgrades(cfg: ModuleConfig, max_level: usize) -> Vec<ModuleConfig> {
    let mut v = Vec::with_capacity(3);
    if cfg.p_intra < max_level {
        v.push(ModuleConfig {
            p_intra: cfg.p_intra + 1,
            ..cfg
        });
    }
    if cfg.nc_ntt < 8 {
        v.push(ModuleConfig {
            nc_ntt: cfg.nc_ntt * 2,
            ..cfg
        });
    }
    if cfg.p_inter < 4 {
        v.push(ModuleConfig {
            p_inter: cfg.p_inter + 1,
            ..cfg
        });
    }
    v
}

/// Greedily explores the design space for `prog` on `device`.
pub fn explore_greedy(prog: &HeCnnProgram, device: &FpgaDevice, w_bits: u32) -> GreedyResult {
    let cost = ProgramCost::new(prog, w_bits);
    let classes = [OpClass::PcMult, OpClass::Rescale, OpClass::KeySwitch];

    let mut current = DesignPoint::minimal();
    let mut current_eval = cost.evaluate(&current, device);
    let mut evaluated = 1usize;
    let mut steps = 0usize;

    if !current_eval.feasible {
        return GreedyResult {
            best: None,
            points_evaluated: evaluated,
            steps,
        };
    }

    loop {
        let mut best_step: Option<(DesignPoint, crate::design::DesignEval)> = None;
        for class in classes {
            for cand in upgrades(current.modules.get(class), prog.max_level) {
                let mut point = current.clone();
                point.modules.set(class, cand);
                let eval = cost.evaluate(&point, device);
                evaluated += 1;
                if !eval.feasible || !eval.fully_buffered {
                    continue;
                }
                if eval.latency_s < current_eval.latency_s
                    && best_step
                        .as_ref()
                        .map(|(_, e)| eval.latency_s < e.latency_s)
                        .unwrap_or(true)
                {
                    best_step = Some((point, eval));
                }
            }
        }
        match best_step {
            Some((point, eval)) => {
                current = point;
                current_eval = eval;
                steps += 1;
            }
            None => break,
        }
    }

    // When even the minimal point cannot be fully buffered (the streaming
    // fallback regime), report the minimal point like the exhaustive
    // explorer does.
    GreedyResult {
        best: Some(ExploredPoint {
            point: current,
            eval: current_eval,
        }),
        points_evaluated: evaluated,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore_default;
    use fxhenn_nn::{fxhenn_mnist, lower_network};

    fn mnist() -> HeCnnProgram {
        lower_network(&fxhenn_mnist(1), 8192, 7)
    }

    #[test]
    fn greedy_reaches_near_exhaustive_quality() {
        let prog = mnist();
        let device = FpgaDevice::acu9eg();
        let exhaustive = explore_default(&prog, &device, 30).best.unwrap();
        let greedy = explore_greedy(&prog, &device, 30).best.unwrap();
        let gap = greedy.eval.latency_s / exhaustive.eval.latency_s;
        assert!(
            gap < 1.3,
            "greedy {:.3}s vs exhaustive {:.3}s ({gap:.2}x)",
            greedy.eval.latency_s,
            exhaustive.eval.latency_s
        );
        assert!(greedy.eval.feasible);
    }

    #[test]
    fn greedy_is_orders_of_magnitude_cheaper() {
        let prog = mnist();
        let device = FpgaDevice::acu9eg();
        let exhaustive = explore_default(&prog, &device, 30);
        let greedy = explore_greedy(&prog, &device, 30);
        assert!(
            greedy.points_evaluated * 50 < exhaustive.points_enumerated,
            "greedy {} vs exhaustive {}",
            greedy.points_evaluated,
            exhaustive.points_enumerated
        );
        assert!(greedy.steps > 0, "some upgrades must apply");
    }

    #[test]
    fn greedy_never_violates_constraints() {
        let prog = mnist();
        for device in [FpgaDevice::acu9eg(), FpgaDevice::acu15eg()] {
            let g = explore_greedy(&prog, &device, 30).best.unwrap();
            assert!(g.eval.dsp_used <= device.dsp_slices());
            assert!(g.eval.feasible);
        }
    }

    #[test]
    fn greedy_on_tiny_device_stays_minimal() {
        // A device with just enough DSP for the minimal design: no
        // upgrade can apply.
        let prog = mnist();
        let minimal_dsp = DesignPoint::minimal().modules.total_dsp();
        let device = FpgaDevice::new("tiny", minimal_dsp, 4096, 0, 250.0, 5.0);
        let g = explore_greedy(&prog, &device, 30);
        let best = g.best.unwrap();
        assert_eq!(best.point, DesignPoint::minimal());
        assert_eq!(g.steps, 0);
    }

    #[test]
    fn greedy_reports_infeasible_when_dsp_too_small() {
        let prog = mnist();
        let device = FpgaDevice::new("hopeless", 100, 4096, 0, 250.0, 5.0);
        let g = explore_greedy(&prog, &device, 30);
        assert!(g.best.is_none());
    }
}

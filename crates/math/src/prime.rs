//! NTT-friendly prime generation.
//!
//! RNS-CKKS needs word-sized primes `q ≡ 1 (mod 2N)` so that the cyclotomic
//! ring `Z_q[X]/(X^N + 1)` has a primitive `2N`-th root of unity and the
//! negacyclic NTT exists. [`NttPrimeGenerator`] walks candidates of a given
//! bit width from the top down, exactly the strategy SEAL and HEAX use to
//! pick coefficient moduli.

use crate::error::MathError;
use crate::modops::{mul_mod, pow_mod};

/// Deterministic Miller–Rabin primality test, valid for all `u64`.
///
/// Uses the fixed witness set `{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}`
/// which is known to be exact below 3.3 · 10^24.
///
/// # Examples
///
/// ```
/// use fxhenn_math::prime::is_prime;
/// assert!(is_prime(1_073_741_789));
/// assert!(!is_prime(1_073_741_790));
/// ```
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    // n - 1 = d * 2^s with d odd
    let mut d = n - 1;
    let mut s = 0u32;
    while d & 1 == 0 {
        d >>= 1;
        s += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a % n, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 1..s {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generator of NTT-friendly primes `q ≡ 1 (mod 2N)` of a fixed bit width.
///
/// Yields primes in decreasing order starting just below `2^bits`, so the
/// first prime of width `b` is the largest `b`-bit NTT prime for ring
/// degree `N`.
///
/// # Examples
///
/// ```
/// use fxhenn_math::prime::NttPrimeGenerator;
/// let mut g = NttPrimeGenerator::new(30, 1024);
/// let q = g.next_prime().unwrap();
/// assert_eq!(q % 2048, 1);
/// assert_eq!(64 - q.leading_zeros(), 30);
/// ```
#[derive(Debug, Clone)]
pub struct NttPrimeGenerator {
    bits: u32,
    two_n: u64,
    candidate: u64,
}

impl NttPrimeGenerator {
    /// Creates a generator for `bits`-bit primes congruent to 1 mod `2n`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `3..=61`, or if `n` is not a power of two,
    /// or if `2n >= 2^bits` (no candidate could exist).
    pub fn new(bits: u32, n: usize) -> Self {
        assert!((3..=61).contains(&bits), "prime width must be in 3..=61");
        assert!(n.is_power_of_two(), "ring degree must be a power of two");
        let two_n = 2 * n as u64;
        assert!(
            two_n < (1u64 << bits),
            "2N must be smaller than the prime width allows"
        );
        // Largest value < 2^bits congruent to 1 mod 2N.
        let top = (1u64 << bits) - 1;
        let candidate = top - ((top - 1) % two_n);
        Self {
            bits,
            two_n,
            candidate,
        }
    }

    /// Returns the next (smaller) NTT prime, or `None` when the width is
    /// exhausted.
    pub fn next_prime(&mut self) -> Option<u64> {
        let lower = 1u64 << (self.bits - 1);
        while self.candidate > lower {
            let c = self.candidate;
            self.candidate = self.candidate.checked_sub(self.two_n)?;
            if is_prime(c) {
                return Some(c);
            }
        }
        None
    }

    /// Collects the next `count` primes, or a [`MathError`] when fewer
    /// primes of this width exist.
    pub fn try_take_primes(&mut self, count: usize) -> Result<Vec<u64>, MathError> {
        let mut primes = Vec::with_capacity(count);
        for found in 0..count {
            match self.next_prime() {
                Some(p) => primes.push(p),
                None => {
                    return Err(MathError::PrimeWidthExhausted {
                        bits: self.bits,
                        found,
                        requested: count,
                    })
                }
            }
        }
        Ok(primes)
    }

    /// Collects the next `count` primes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `count` primes of this width exist.
    pub fn take_primes(&mut self, count: usize) -> Vec<u64> {
        self.try_take_primes(count).expect("NTT prime generation")
    }
}

/// Convenience: generates `count` distinct NTT primes of width `bits` for
/// ring degree `n`, largest first.
pub fn generate_ntt_primes(bits: u32, n: usize, count: usize) -> Vec<u64> {
    NttPrimeGenerator::new(bits, n).take_primes(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes_recognized() {
        let primes = [2u64, 3, 5, 7, 11, 13, 97, 65537];
        let composites = [0u64, 1, 4, 9, 15, 91, 561, 65535];
        for p in primes {
            assert!(is_prime(p), "{p} should be prime");
        }
        for c in composites {
            assert!(!is_prime(c), "{c} should be composite");
        }
    }

    #[test]
    fn strong_pseudoprimes_rejected() {
        // Carmichael numbers and known base-2 strong pseudoprimes.
        for c in [2047u64, 3215031751, 3825123056546413051] {
            assert!(!is_prime(c), "{c} is composite");
        }
    }

    #[test]
    fn large_known_primes_accepted() {
        assert!(is_prime((1 << 61) - 1)); // Mersenne prime M61
        assert!(is_prime(4611686018427387847)); // < 2^62
    }

    #[test]
    fn generated_primes_have_correct_form() {
        for (bits, n) in [(30u32, 8192usize), (36, 16384), (54, 2048), (20, 1024)] {
            let primes = generate_ntt_primes(bits, n, 5);
            assert_eq!(primes.len(), 5);
            for &q in &primes {
                assert!(is_prime(q));
                assert_eq!(q % (2 * n as u64), 1);
                assert_eq!(64 - q.leading_zeros(), bits);
            }
            // Strictly decreasing, hence distinct.
            for w in primes.windows(2) {
                assert!(w[0] > w[1]);
            }
        }
    }

    #[test]
    fn generator_is_resumable() {
        let mut g = NttPrimeGenerator::new(30, 4096);
        let first = g.take_primes(3);
        let more = g.take_primes(2);
        let all = generate_ntt_primes(30, 4096, 5);
        assert_eq!(all[..3], first[..]);
        assert_eq!(all[3..], more[..]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_degree() {
        NttPrimeGenerator::new(30, 1000);
    }

    #[test]
    #[should_panic(expected = "2N must be smaller")]
    fn rejects_too_small_width() {
        NttPrimeGenerator::new(12, 4096);
    }
}

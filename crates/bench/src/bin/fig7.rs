//! Figure 7: per-layer BRAM usage and latency of FxHENN-MNIST on
//! ACU9EG — baseline (proportional BRAM split, no reuse) versus FxHENN
//! (inter-layer reuse lets the bottleneck Fc1 take most of the chip).
//!
//! Run with: `cargo run --release -p fxhenn-bench --bin fig7`

use fxhenn::dse::{allocate_baseline, evaluate_baseline, explore_default};
use fxhenn::FpgaDevice;
use fxhenn_bench::{header, mnist_program, pct, MNIST_W};

fn main() {
    header(
        "Figure 7 — per-layer BRAM and latency: baseline vs FxHENN (MNIST/ACU9EG)",
        "Fig. 7",
    );
    let prog = mnist_program();
    let device = FpgaDevice::acu9eg();

    let base_design = allocate_baseline(&prog, &device, MNIST_W);
    let base = evaluate_baseline(&prog, &base_design, &device, MNIST_W);
    let fx = explore_default(&prog, &device, MNIST_W)
        .best
        .expect("feasible");

    println!(
        "{:<6} | {:>12} {:>12} | {:>12} {:>12} | {:>8}",
        "Layer", "base BRAM%", "base lat(s)", "fx BRAM%", "fx lat(s)", "speedup"
    );
    for (i, plan) in prog.layers.iter().enumerate() {
        let base_bram = pct(base.per_layer_bram_alloc[i], device.bram_blocks());
        let fx_bram = pct(fx.eval.per_layer_bram[i], device.bram_blocks());
        let speedup = base.per_layer_latency_s[i] / fx.eval.per_layer_latency_s[i];
        println!(
            "{:<6} | {:>11.1}% {:>12.4} | {:>11.1}% {:>12.4} | {:>7.2}x",
            plan.name,
            base_bram,
            base.per_layer_latency_s[i],
            fx_bram,
            fx.eval.per_layer_latency_s[i],
            speedup,
        );
    }

    let fc1 = prog.layers.iter().position(|l| l.name == "Fc1").unwrap();
    println!();
    println!(
        "Fc1: baseline grants {:.1}% of BRAM (paper 25.8%), FxHENN lets it use {:.1}% \
         (paper 84.8%); Fc1 speedup = {:.2}x (paper 6.63x).",
        pct(base.per_layer_bram_alloc[fc1], device.bram_blocks()),
        pct(fx.eval.per_layer_bram[fc1], device.bram_blocks()),
        base.per_layer_latency_s[fc1] / fx.eval.per_layer_latency_s[fc1],
    );
    println!(
        "Per-layer BRAM stays divergent even under reuse (paper's Fig. 7 note): \
         activations are cheap, the KS-heavy Fc1 dominates."
    );
}

//! Security estimation per the HomomorphicEncryption.org standard.
//!
//! The paper selects `N = 8192, log Q = 210` for FxHENN-MNIST (targeting
//! 128-bit security) and `N = 16384, log Q = 252` for FxHENN-CIFAR10
//! (192-bit), citing the standard parameter tables [1], [8]. This module
//! reproduces the classical-hardness table for ternary secrets so
//! parameter sets can be validated programmatically.

/// Classical security level of a parameter set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SecurityLevel {
    /// Modulus too large for the ring degree: below 128-bit security.
    Insecure,
    /// At least 128-bit classical security.
    Bits128,
    /// At least 192-bit classical security.
    Bits192,
    /// At least 256-bit classical security.
    Bits256,
}

impl SecurityLevel {
    /// Numeric bit strength (0 for [`SecurityLevel::Insecure`]).
    pub fn bits(self) -> u32 {
        match self {
            SecurityLevel::Insecure => 0,
            SecurityLevel::Bits128 => 128,
            SecurityLevel::Bits192 => 192,
            SecurityLevel::Bits256 => 256,
        }
    }
}

impl std::fmt::Display for SecurityLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SecurityLevel::Insecure => f.write_str("<128-bit (insecure)"),
            SecurityLevel::Bits128 => f.write_str("128-bit"),
            SecurityLevel::Bits192 => f.write_str("192-bit"),
            SecurityLevel::Bits256 => f.write_str("256-bit"),
        }
    }
}

/// Maximum `log2 Q` for (128, 192, 256)-bit classical security with
/// ternary secret, per the HE standard.
const STANDARD_TABLE: &[(usize, [u32; 3])] = &[
    (1024, [27, 19, 14]),
    (2048, [54, 37, 29]),
    (4096, [109, 75, 58]),
    (8192, [218, 152, 118]),
    (16384, [438, 305, 237]),
    (32768, [881, 611, 476]),
];

/// Returns the maximum ciphertext-modulus width (bits) admissible at the
/// given security target, or `None` if the ring degree is not tabulated.
pub fn max_modulus_bits(n: usize, target: SecurityLevel) -> Option<u32> {
    let idx = match target {
        SecurityLevel::Bits128 => 0,
        SecurityLevel::Bits192 => 1,
        SecurityLevel::Bits256 => 2,
        SecurityLevel::Insecure => return None,
    };
    STANDARD_TABLE
        .iter()
        .find(|(deg, _)| *deg == n)
        .map(|(_, caps)| caps[idx])
}

/// Classifies the classical security of a `(N, log2 Q)` pair.
///
/// Rings smaller than 1024 are always classified [`SecurityLevel::Insecure`]
/// (they exist in this library for fast functional testing only). Degrees
/// above the table are conservatively matched to the largest tabulated
/// ring.
///
/// Like the paper (Table VII), the modulus counted here is the ciphertext
/// modulus `Q` — the key-switching special modulus is reported separately.
///
/// # Examples
///
/// ```
/// use fxhenn_ckks::security::{estimate_security, SecurityLevel};
/// // FxHENN-MNIST: N = 8192, log Q = 210
/// assert_eq!(estimate_security(8192, 210), SecurityLevel::Bits128);
/// // FxHENN-CIFAR10: N = 16384, log Q = 252
/// assert_eq!(estimate_security(16384, 252), SecurityLevel::Bits192);
/// ```
pub fn estimate_security(n: usize, total_modulus_bits: u32) -> SecurityLevel {
    let row = STANDARD_TABLE
        .iter()
        .rev()
        .find(|(deg, _)| *deg <= n)
        .map(|(_, caps)| caps);
    let Some(caps) = row else {
        return SecurityLevel::Insecure;
    };
    if total_modulus_bits <= caps[2] {
        SecurityLevel::Bits256
    } else if total_modulus_bits <= caps[1] {
        SecurityLevel::Bits192
    } else if total_modulus_bits <= caps[0] {
        SecurityLevel::Bits128
    } else {
        SecurityLevel::Insecure
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameter_sets_classify_as_claimed() {
        // Table VII: FxHENN MNIST row claims lambda = 128 at N = 2^13, Q = 210.
        assert_eq!(estimate_security(8192, 210), SecurityLevel::Bits128);
        // CIFAR10 row claims lambda = 192 at N = 2^14, Q = 252.
        assert_eq!(estimate_security(16384, 252), SecurityLevel::Bits192);
    }

    #[test]
    fn oversized_modulus_is_insecure() {
        assert_eq!(estimate_security(8192, 219), SecurityLevel::Insecure);
        assert_eq!(estimate_security(1024, 28), SecurityLevel::Insecure);
    }

    #[test]
    fn small_modulus_reaches_256() {
        assert_eq!(estimate_security(8192, 118), SecurityLevel::Bits256);
        assert_eq!(estimate_security(8192, 119), SecurityLevel::Bits192);
    }

    #[test]
    fn tiny_test_rings_are_insecure() {
        assert_eq!(estimate_security(64, 30), SecurityLevel::Insecure);
        assert_eq!(estimate_security(512, 20), SecurityLevel::Insecure);
    }

    #[test]
    fn untabulated_large_ring_uses_largest_row() {
        assert_eq!(estimate_security(65536, 881), SecurityLevel::Bits128);
    }

    #[test]
    fn max_modulus_bits_matches_table() {
        assert_eq!(max_modulus_bits(8192, SecurityLevel::Bits128), Some(218));
        assert_eq!(max_modulus_bits(16384, SecurityLevel::Bits192), Some(305));
        assert_eq!(max_modulus_bits(8192, SecurityLevel::Insecure), None);
        assert_eq!(max_modulus_bits(1000, SecurityLevel::Bits128), None);
    }

    #[test]
    fn ordering_reflects_strength() {
        assert!(SecurityLevel::Insecure < SecurityLevel::Bits128);
        assert!(SecurityLevel::Bits128 < SecurityLevel::Bits192);
        assert!(SecurityLevel::Bits192 < SecurityLevel::Bits256);
        assert_eq!(SecurityLevel::Bits192.bits(), 192);
    }
}

//! Table IV: MAC counts of plain CNN layers versus their HE-CNN
//! lowering — the 3–4 orders-of-magnitude inflation that motivates
//! acceleration, and the shift of the bottleneck toward the
//! KeySwitch-heavy FC layer.
//!
//! Run with: `cargo run --release -p fxhenn-bench --bin table4`

use fxhenn_bench::{delta, header, mnist_program, MNIST_N};

fn main() {
    header(
        "Table IV — MACs: plain CNN vs HE-CNN (FxHENN-MNIST)",
        "Table IV",
    );
    let prog = mnist_program();

    // Paper rows: (layer, plain MACs x1e4, HOPs, HE-MACs x1e4).
    let paper = [
        ("Cnv1", 2.11f64, 75u64, 11_980.7f64),
        ("Fc1", 8.45, 325, 155_105.28),
    ];
    let plain_macs = [21_125u64, 84_500u64];

    println!(
        "{:<6} | {:>10} {:>10} | {:>7} {:>8} | {:>12} {:>12} {:>7}",
        "Layer", "MACs(e4)", "(paper)", "HOPs", "(paper)", "HEMACs(e4)", "(paper)", "Δ"
    );
    for ((name, paper_macs, paper_hops, paper_hemacs), plain) in paper.iter().zip(plain_macs) {
        let plan = prog.layer(name).unwrap();
        let he_macs = plan.he_macs(MNIST_N) as f64 / 1e4;
        println!(
            "{:<6} | {:>10.2} {:>10.2} | {:>7} {:>8} | {:>12.1} {:>12.1} {:>7}",
            name,
            plain as f64 / 1e4,
            paper_macs,
            plan.hop_count(),
            paper_hops,
            he_macs,
            paper_hemacs,
            delta(he_macs, *paper_hemacs),
        );
    }

    let cnv1 = prog.layer("Cnv1").unwrap();
    let fc1 = prog.layer("Fc1").unwrap();
    let plain_ratio = plain_macs[1] as f64 / plain_macs[0] as f64;
    let he_ratio = fc1.he_macs(MNIST_N) as f64 / cnv1.he_macs(MNIST_N) as f64;
    println!();
    println!(
        "Fc1/Cnv1 workload ratio: plain {plain_ratio:.2}x -> HE {he_ratio:.2}x \
         (paper: 4x -> 12.95x). The HE lowering shifts the bottleneck to Fc1."
    );
}

//! Blocked ciphertext×ciphertext matrix multiply in the
//! Jiang–Kim–Lauter–Song style, adapted to tiled slot packing.
//!
//! A `d × d` block is packed row-major into a `d²`-slot pattern and
//! replicated across all `slots / d²` tiles, so every full-ring
//! rotation acts on the pattern *modulo `d²`* — in particular row
//! shifts (`ψ`) become pure rotations with the wraparound absorbed by
//! the neighbouring tile, needing no mask at all.
//!
//! The product `C = A·B` is evaluated as
//!
//! ```text
//!   C = Σ_{k=0}^{d-1} φᵏ(σ(A)) ⊙ ψᵏ(τ(B))
//! ```
//!
//! where `σ(A)[i][j] = A[i][(i+j) mod d]` (2d−1 masked diagonals,
//! evaluated with baby-step/giant-step rotations), `τ(B)[i][j] =
//! B[(i+j) mod d][j]` (d masked diagonals with stride-`d` shifts, also
//! BSGS), `φᵏ` shifts columns by `k` (two masked rotations) and `ψᵏ`
//! shifts rows by `k` (one pure rotation). The `d` shifted products
//! accumulate in un-relinearised 3-poly form; a single relinearize +
//! rescale closes the block.
//!
//! Depth is exactly three levels per block (σ/τ mask rescale, φ mask
//! rescale, product rescale), booked as one [`HeOpKind::CtMatmul`]
//! macro record at the entry level — the unit the noise planner, the
//! lowering and the hardware cost model all reason in.

use crate::cipher::Ciphertext;
use crate::error::EvalError;
use crate::eval::Evaluator;
use crate::keys::{GaloisKeys, RelinKey};
use crate::trace::HeOpKind;
use std::collections::BTreeSet;

/// Multiplicative depth of one ct×ct matmul block.
pub const MATMUL_DEPTH: usize = 3;

/// An arithmetic progression of rotation shifts `start + idx·stride`
/// with a slot mask per shift, evaluated as one BSGS masked-rotation
/// sum.  The mask vectors are already tiled to the full slot count.
struct MaskedProg {
    start: i64,
    stride: i64,
    masks: Vec<Vec<f64>>,
}

fn norm_shift(s: i64, slots: usize) -> usize {
    (s.rem_euclid(slots as i64)) as usize
}

fn bsgs_baby_count(count: usize) -> usize {
    (count as f64).sqrt().ceil() as usize
}

/// Tiles one `d²`-slot pattern across the whole slot vector.
fn tile(pattern: &[f64], slots: usize) -> Vec<f64> {
    (0..slots).map(|t| pattern[t % pattern.len()]).collect()
}

/// The σ transform program: diagonal `s ∈ [−(d−1), d−1]` carries the
/// entries whose in-pattern source offset is exactly `s` —
/// `mask_s[i·d+j] = 1` iff `(i·d + (i+j) mod d) − (i·d+j) = s`.
fn sigma_prog(d: usize, slots: usize) -> MaskedProg {
    let dd = d * d;
    let masks = (-(d as i64 - 1)..=(d as i64 - 1))
        .map(|s| {
            let mut pattern = vec![0.0f64; dd];
            for (t, slot) in pattern.iter_mut().enumerate() {
                let (i, j) = (t / d, t % d);
                let src = i * d + (i + j) % d;
                if src as i64 - t as i64 == s {
                    *slot = 1.0;
                }
            }
            tile(&pattern, slots)
        })
        .collect();
    MaskedProg {
        start: -(d as i64 - 1),
        stride: 1,
        masks,
    }
}

/// The τ transform program: column `j` moves by exactly `j·d` on the
/// tiled ring (the `i+j ≥ d` wraparound lands in the next tile, which
/// holds the same pattern), so the masks are column indicators.
fn tau_prog(d: usize, slots: usize) -> MaskedProg {
    let dd = d * d;
    let masks = (0..d)
        .map(|col| {
            let mut pattern = vec![0.0f64; dd];
            for (t, slot) in pattern.iter_mut().enumerate() {
                if t % d == col {
                    *slot = 1.0;
                }
            }
            tile(&pattern, slots)
        })
        .collect();
    MaskedProg {
        start: 0,
        stride: d as i64,
        masks,
    }
}

/// Evaluates `Σ_idx mask_idx ⊙ rot_{start+idx·stride}(ct)` with
/// baby-step/giant-step rotations: `rot_{G+B}(x)` masked by `m` equals
/// `rot_G(rot_{−G}(m) ⊙ rot_B(x))`, so each giant group shares its baby
/// rotations and pays one giant rotation.  One rescale closes the sum
/// (one level); output returns to the input scale.
fn bsgs_masked_sum(
    ev: &mut Evaluator<'_>,
    ct: &Ciphertext,
    prog: &MaskedProg,
    gks: &GaloisKeys,
) -> Result<Ciphertext, EvalError> {
    let slots = ev.context().degree() / 2;
    let count = prog.masks.len();
    let level = ct.level();
    let bs = bsgs_baby_count(count);
    let mut babies: Vec<Ciphertext> = Vec::with_capacity(bs);
    for b in 0..bs.min(count) {
        let steps = norm_shift(b as i64 * prog.stride, slots);
        babies.push(if steps == 0 {
            ct.clone()
        } else {
            ev.rotate(ct, steps, gks)?
        });
    }
    let mut acc: Option<Ciphertext> = None;
    for g in 0..count.div_ceil(bs) {
        let gshift = prog.start + (g * bs) as i64 * prog.stride;
        let mut inner: Option<Ciphertext> = None;
        for (b, baby) in babies.iter().enumerate() {
            let idx = g * bs + b;
            if idx >= count {
                break;
            }
            let mask = &prog.masks[idx];
            // The giant rotation moves the masked term by `gshift`, so
            // the mask pre-rotates the other way.
            let pre: Vec<f64> = (0..slots)
                .map(|t| mask[norm_shift(t as i64 - gshift, slots)])
                .collect();
            let pt = ev.encode_for_mul(&pre, level)?;
            let term = ev.mul_plain(baby, &pt)?;
            inner = Some(match inner {
                None => term,
                Some(sum) => ev.add(&sum, &term)?,
            });
        }
        let inner = inner.ok_or(EvalError::LevelExhausted { have: 0, need: 1 })?;
        let steps = norm_shift(gshift, slots);
        let moved = if steps == 0 {
            inner
        } else {
            ev.rotate(&inner, steps, gks)?
        };
        acc = Some(match acc {
            None => moved,
            Some(sum) => ev.add(&sum, &moved)?,
        });
    }
    let acc = acc.ok_or(EvalError::LevelExhausted { have: 0, need: 1 })?;
    ev.rescale(&acc)
}

/// `φᵏ`: shifts the columns of an already-σ-transformed block left by
/// `k` — two masked rotations (shift `k` for columns `j < d−k`, shift
/// `k−d` for the wraparound columns) and one rescale.
fn phi_shift(
    ev: &mut Evaluator<'_>,
    sa: &Ciphertext,
    k: usize,
    d: usize,
    gks: &GaloisKeys,
) -> Result<Ciphertext, EvalError> {
    let slots = ev.context().degree() / 2;
    let level = sa.level();
    let dd = d * d;
    let mut keep = vec![0.0f64; dd];
    let mut wrap = vec![0.0f64; dd];
    for t in 0..dd {
        if t % d < d - k {
            keep[t] = 1.0;
        } else {
            wrap[t] = 1.0;
        }
    }
    let r1 = ev.rotate(sa, norm_shift(k as i64, slots), gks)?;
    let p1 = ev.encode_for_mul(&tile(&keep, slots), level)?;
    let t1 = ev.mul_plain(&r1, &p1)?;
    let r2 = ev.rotate(sa, norm_shift(k as i64 - d as i64, slots), gks)?;
    let p2 = ev.encode_for_mul(&tile(&wrap, slots), level)?;
    let t2 = ev.mul_plain(&r2, &p2)?;
    let s = ev.add(&t1, &t2)?;
    ev.rescale(&s)
}

/// Every rotation step a `d × d` block multiply needs (σ and τ BSGS
/// babies and giants, φ column shifts, ψ row shifts), deduplicated and
/// sorted — generate Galois keys for exactly this set.
pub fn required_rotations(d: usize, slots: usize) -> Vec<usize> {
    let mut set = BTreeSet::new();
    let mut add_bsgs = |start: i64, stride: i64, count: usize| {
        let bs = bsgs_baby_count(count);
        for b in 0..bs.min(count) {
            set.insert(norm_shift(b as i64 * stride, slots));
        }
        for g in 0..count.div_ceil(bs) {
            set.insert(norm_shift(start + (g * bs) as i64 * stride, slots));
        }
    };
    add_bsgs(-(d as i64 - 1), 1, 2 * d - 1);
    add_bsgs(0, d as i64, d);
    for k in 1..d {
        set.insert(norm_shift(k as i64, slots));
        set.insert(norm_shift(k as i64 - d as i64, slots));
        set.insert(norm_shift((k * d) as i64, slots));
    }
    set.remove(&0);
    set.into_iter().collect()
}

/// Packs a row-major `d × d` matrix into a slot vector, replicating the
/// `d²`-slot pattern across every tile.
///
/// # Panics
///
/// Panics unless `values` has `d²` entries fitting the slot count.
pub fn encode_block(values: &[f64], d: usize, slots: usize) -> Vec<f64> {
    assert_eq!(values.len(), d * d, "block is d×d row-major");
    assert!(d * d <= slots, "block tile must fit the slot count");
    tile(values, slots)
}

/// Reads the first tile of a decrypted slot vector back as a row-major
/// `d × d` matrix.
///
/// # Panics
///
/// Panics if the slot vector is shorter than one tile.
pub fn decode_block(slot_values: &[f64], d: usize) -> Vec<f64> {
    assert!(slot_values.len() >= d * d, "need at least one tile");
    slot_values[..d * d].to_vec()
}

/// Plaintext reference product of two row-major `d × d` matrices.
///
/// # Panics
///
/// Panics unless both inputs have `d²` entries.
pub fn matmul_reference(a: &[f64], b: &[f64], d: usize) -> Vec<f64> {
    assert_eq!(a.len(), d * d);
    assert_eq!(b.len(), d * d);
    let mut c = vec![0.0f64; d * d];
    for i in 0..d {
        for j in 0..d {
            let mut acc = 0.0;
            for k in 0..d {
                acc += a[i * d + k] * b[k * d + j];
            }
            c[i * d + j] = acc;
        }
    }
    c
}

/// Homomorphic `C = A·B` over one `d × d` block (both matrices packed
/// with [`encode_block`] at the same level and scale), consuming
/// [`MATMUL_DEPTH`] levels and booking one [`HeOpKind::CtMatmul`] macro
/// record.  The result decrypts to the row-major product in every tile.
///
/// `d` must be a power of two with `d² ≤ slots` — use
/// [`crate::trace::matmul_block_dim`] for the canonical dimension at a
/// given ring degree, or any smaller power of two.
///
/// # Errors
///
/// Fails with [`EvalError::LevelExhausted`] when fewer than
/// `MATMUL_DEPTH + 2` levels remain (the closing `Δ²`-scale product
/// needs modulus headroom at level ≥ 3, see `sgn`),
/// [`EvalError::MissingGaloisKey`] when `gks` lacks a step from
/// [`required_rotations`], and as the constituent ops do.
///
/// # Panics
///
/// Panics if `d` is not a power of two fitting the slot count.
pub fn ct_matmul(
    ev: &mut Evaluator<'_>,
    a: &Ciphertext,
    b: &Ciphertext,
    rk: &RelinKey,
    gks: &GaloisKeys,
    d: usize,
) -> Result<Ciphertext, EvalError> {
    let slots = ev.context().degree() / 2;
    assert!(
        d >= 1 && d.is_power_of_two() && d * d <= slots,
        "block dim {d} must be a power of two with d² ≤ {slots} slots"
    );
    let need = MATMUL_DEPTH + 2;
    if a.level() < need || b.level() < need {
        return Err(EvalError::LevelExhausted {
            have: a.level().min(b.level()),
            need,
        });
    }
    let entry = a.level();
    let out = ev.record_macro(HeOpKind::CtMatmul, entry, |ev| {
        // σ/τ transforms: one level.
        let sa = bsgs_masked_sum(ev, a, &sigma_prog(d, slots), gks)?;
        let tb = bsgs_masked_sum(ev, b, &tau_prog(d, slots), gks)?;
        // Shifted products, all at the φ output level, accumulated
        // without intermediate relinearisation.
        let target = sa.level() - 1;
        let sa0 = ev.mod_switch_to(&sa, target)?;
        let tb0 = ev.mod_switch_to(&tb, target)?;
        let mut acc = ev.mul(&sa0, &tb0)?;
        for k in 1..d {
            let phi = phi_shift(ev, &sa, k, d, gks)?;
            let psi = ev.rotate(&tb, norm_shift((k * d) as i64, slots), gks)?;
            let psi = ev.mod_switch_to(&psi, target)?;
            let term = ev.mul(&phi, &psi)?;
            acc = ev.add(&acc, &term)?;
        }
        // One closing relinearize + rescale for the whole block.
        let acc = ev.relinearize(&acc, rk)?;
        ev.rescale(&acc)
    })?;
    // The masked-rotation sums track interval bounds that grow with the
    // diagonal count; the mathematical bound on a product entry is the
    // inner-product length times the operand bounds.
    let std = out.noise_std();
    let tight = out
        .msg_bound()
        .min(d as f64 * a.msg_bound() * b.msg_bound());
    Ok(out.with_noise(std, tight))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::CkksContext;
    use crate::encrypt::{Decryptor, Encryptor};
    use crate::keys::KeyGenerator;
    use crate::params::CkksParams;
    use crate::trace::matmul_block_dim;
    use fxhenn_math::par::{with_dispatch_threshold, with_parallelism, Parallelism};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn block_values(d: usize, seed: u64) -> Vec<f64> {
        // Deterministic pseudo-values in [-1, 1].
        (0..d * d)
            .map(|i| {
                let x = (i as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(seed.wrapping_mul(0xD1B5_4A32_D192_ED03));
                ((x >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect()
    }

    fn run_block(n: usize, levels: usize, d: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let params = CkksParams::new(n, levels, 30, 45).expect("params");
        let ctx = CkksContext::new(params);
        let slots = ctx.degree() / 2;
        let mut kg = KeyGenerator::new(&ctx, StdRng::seed_from_u64(seed));
        let pk = kg.public_key();
        let sk = kg.secret_key();
        let rk = kg.relin_key();
        let gks = kg.galois_keys(&required_rotations(d, slots));
        let mut enc = Encryptor::new(&ctx, pk, StdRng::seed_from_u64(seed + 1));
        let dec = Decryptor::new(&ctx, sk);
        let a = block_values(d, seed + 2);
        let b = block_values(d, seed + 3);
        let ca = enc.encrypt(&encode_block(&a, d, slots));
        let cb = enc.encrypt(&encode_block(&b, d, slots));
        let mut ev = Evaluator::new(&ctx);
        let cc = ct_matmul(&mut ev, &ca, &cb, &rk, &gks, d).expect("ct_matmul");
        assert_eq!(cc.level(), levels - MATMUL_DEPTH);
        let got = decode_block(&dec.decrypt(&cc), d);
        let want = matmul_reference(&a, &b, d);
        (got, want)
    }

    fn assert_close(got: &[f64], want: &[f64], tol: f64, label: &str) {
        for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
            assert!(
                (g - w).abs() < tol,
                "{label}: entry {i} decrypted {g}, reference {w}"
            );
        }
    }

    #[test]
    fn matmul_matches_reference_at_three_parameter_points() {
        // Three (N, L) points, as the workload matrix promises.
        for (n, levels, d, seed) in [
            (1024usize, 5usize, 8usize, 101u64),
            (1024, 6, 16, 103),
            (2048, 5, 16, 105),
        ] {
            let (got, want) = run_block(n, levels, d, seed);
            assert_close(&got, &want, 1e-2, &format!("N={n} L={levels} d={d}"));
        }
    }

    #[test]
    fn matmul_is_consistent_serial_and_threaded() {
        let serial = with_parallelism(Parallelism::Serial, || run_block(1024, 5, 8, 107));
        let threaded = with_dispatch_threshold(0, || {
            with_parallelism(Parallelism::Threads(3), || run_block(1024, 5, 8, 107))
        });
        assert_eq!(
            serial.0, threaded.0,
            "thread count must not change a single decoded value"
        );
        assert_close(&serial.0, &serial.1, 1e-2, "serial");
    }

    #[test]
    fn matmul_books_one_macro_record() {
        let ctx = CkksContext::new(CkksParams::insecure_toy(5));
        let slots = ctx.degree() / 2;
        let d = 4;
        let mut kg = KeyGenerator::new(&ctx, StdRng::seed_from_u64(109));
        let pk = kg.public_key();
        let rk = kg.relin_key();
        let gks = kg.galois_keys(&required_rotations(d, slots));
        let mut enc = Encryptor::new(&ctx, pk, StdRng::seed_from_u64(110));
        let a = block_values(d, 1);
        let ca = enc.encrypt(&encode_block(&a, d, slots));
        let cb = enc.encrypt(&encode_block(&a, d, slots));
        let mut ev = Evaluator::new(&ctx);
        ev.start_trace();
        let _ = ct_matmul(&mut ev, &ca, &cb, &rk, &gks, d).expect("ct_matmul");
        let trace = ev.take_trace().expect("trace");
        assert_eq!(trace.hop_count(), 1, "one macro record per block");
        assert_eq!(trace.count_of(HeOpKind::CtMatmul), 1);
        assert_eq!(trace.records()[0].level, 5);
    }

    #[test]
    fn matmul_rejects_shallow_ciphertexts() {
        let ctx = CkksContext::new(CkksParams::insecure_toy(3));
        let slots = ctx.degree() / 2;
        let d = 4;
        let mut kg = KeyGenerator::new(&ctx, StdRng::seed_from_u64(111));
        let pk = kg.public_key();
        let rk = kg.relin_key();
        let gks = kg.galois_keys(&required_rotations(d, slots));
        let mut enc = Encryptor::new(&ctx, pk, StdRng::seed_from_u64(112));
        let a = block_values(d, 1);
        let ca = enc.encrypt(&encode_block(&a, d, slots));
        let cb = enc.encrypt(&encode_block(&a, d, slots));
        let mut ev = Evaluator::new(&ctx);
        match ct_matmul(&mut ev, &ca, &cb, &rk, &gks, d) {
            Err(EvalError::LevelExhausted { have: 3, need: 5 }) => {}
            other => panic!("expected LevelExhausted, got {other:?}"),
        }
    }

    #[test]
    fn required_rotations_cover_the_canonical_dim() {
        for n in [1024usize, 8192] {
            let slots = n / 2;
            let d = matmul_block_dim(n);
            let rots = required_rotations(d, slots);
            assert!(!rots.is_empty());
            assert!(rots.iter().all(|&r| r > 0 && r < slots));
            // ψ row shifts are always present.
            for k in 1..d.min(4) {
                assert!(rots.contains(&(k * d)), "missing ψ shift {}", k * d);
            }
        }
    }
}

//! Offline stand-in for the slice of the `criterion` 0.5 API this
//! workspace uses.
//!
//! The build environment has no route to a crates.io mirror, so the
//! workspace vendors a minimal timing harness with the same surface:
//! `criterion_group!`/`criterion_main!`, `Criterion::{bench_function,
//! benchmark_group}`, groups with `throughput`/`sample_size`/
//! `bench_with_input`/`finish`, and benchers with `iter`/`iter_batched`.
//! It reports a median wall-clock time per iteration on stdout — no
//! statistics, plots, or baselines — keeping `cargo bench` functional
//! offline without pretending to be a rigorous measurement tool.

use std::fmt;
use std::time::{Duration, Instant};

/// Upper bound on the wall-clock budget for measuring one benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);

/// How a benchmark's workload is sized, for per-element reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How batched setup output is sized (accepted, not acted on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/param`.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), param),
        }
    }

    /// Builds a parameter-only id.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        Self {
            id: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The per-benchmark timing driver handed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    fn new() -> Self {
        Self {
            samples: Vec::new(),
            iters_per_sample: 1,
        }
    }

    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let deadline = Instant::now() + MEASURE_BUDGET;
        while Instant::now() < deadline && self.samples.len() < 64 {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / self.iters_per_sample as u32);
        }
    }

    /// Times `routine` on fresh inputs built by `setup` (setup time
    /// excluded from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let deadline = Instant::now() + MEASURE_BUDGET;
        while Instant::now() < deadline && self.samples.len() < 64 {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&mut self, label: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{label:<44} (no samples)");
            return;
        }
        self.samples.sort();
        let median = self.samples[self.samples.len() / 2];
        let per_elem = match throughput {
            Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) if n > 0 => {
                format!("  ({:.1} ns/elem)", median.as_nanos() as f64 / n as f64)
            }
            _ => String::new(),
        };
        println!(
            "{label:<44} median {:>12.3} µs over {} samples{per_elem}",
            median.as_secs_f64() * 1e6,
            self.samples.len(),
        );
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the workload size for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the stub sizes itself by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let mut bencher = Bencher::new();
        f(&mut bencher);
        bencher.report(&label, self.throughput);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let mut bencher = Bencher::new();
        f(&mut bencher, input);
        bencher.report(&label, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new();
        f(&mut bencher);
        bencher.report(&id.to_string(), None);
        self
    }
}

/// Re-export for code using `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a group function running each benchmark function in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.throughput(Throughput::Elements(4));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput)
        });
        group.finish();
    }

    criterion_group!(benches, tiny_bench);

    #[test]
    fn harness_runs_and_reports() {
        benches();
    }
}

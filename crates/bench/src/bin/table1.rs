//! Table I: implementation of HE operation modules on ALINX ACU9EG —
//! DSP %, BRAM block % and latency per module, versus `nc_NTT`.
//!
//! Run with: `cargo run --release -p fxhenn-bench --bin table1`

use fxhenn::hw::buffers::module_bram_blocks;
use fxhenn::hw::calibration::PAPER_TABLE1;
use fxhenn::hw::{HeOpModule, ModuleConfig};
use fxhenn_bench::{delta, header, pct, CLOCK_MHZ, LEVELS, MNIST_N, MNIST_W};

fn main() {
    header(
        "Table I — HE operation modules on ACU9EG (N=8192, L=7, 30-bit q)",
        "Table I",
    );
    println!(
        "{:<12} {:>4} | {:>8} {:>8} {:>6} | {:>9} {:>9} {:>6} | {:>9} {:>9} {:>6}",
        "op", "nc", "DSP%", "(paper)", "Δ", "BRAM%", "(paper)", "Δ", "lat(ms)", "(paper)", "Δ"
    );
    let total_dsp = 2520usize;
    let total_bram = 912usize;
    for &(class, nc, paper_dsp, paper_bram, paper_lat) in PAPER_TABLE1 {
        let module = HeOpModule::new(
            class,
            ModuleConfig {
                nc_ntt: nc,
                p_intra: 1,
                p_inter: 1,
            },
        );
        let dsp = pct(module.dsp_usage(), total_dsp);
        let bram = pct(
            module_bram_blocks(class, LEVELS, MNIST_N, MNIST_W, nc),
            total_bram,
        );
        let lat_ms = module.op_latency_cycles(LEVELS, MNIST_N) as f64 / (CLOCK_MHZ * 1e3);
        println!(
            "{:<12} {:>4} | {:>8.2} {:>8.2} {:>6} | {:>9.2} {:>9.2} {:>6} | {:>9.3} {:>9.2} {:>6}",
            format!("{class}"),
            nc,
            dsp,
            paper_dsp,
            delta(dsp, paper_dsp),
            bram,
            paper_bram,
            delta(bram, paper_bram),
            lat_ms,
            paper_lat,
            delta(lat_ms, paper_lat),
        );
    }
    println!();
    println!("Shape checks: NTT-bound ops halve with nc; BRAM flat 2->4, doubles at 8.");
}

//! Key material: secret, public, relinearization and Galois keys.
//!
//! Key switching uses the hybrid construction with per-prime digits
//! (`dnum = L`) and a single special prime `p`. The gadget element for
//! digit `i` is `g_i = p · Q̂_i · [Q̂_i^{-1}]_{q_i}`, whose RNS residues
//! are simply `p mod q_i` at position `i` and zero everywhere else — so a
//! level-`L` key serves every lower level by restriction, the property
//! the paper's inter-layer module reuse relies on (a single KeySwitch
//! module instance handles ciphertexts of any level).

use crate::context::CkksContext;
use fxhenn_math::poly::{Domain, RnsPoly};
use fxhenn_math::sampling::{
    sample_gaussian, sample_ternary, sample_uniform, small_to_rns, STANDARD_SIGMA,
};
use rand::Rng;
use std::collections::HashMap;

/// The ternary secret key, stored in NTT form over the full extended
/// basis (all coefficient primes plus the special prime).
#[derive(Debug, Clone)]
pub struct SecretKey {
    /// NTT-domain secret over `L + 1` primes.
    s: RnsPoly,
}

impl SecretKey {
    /// The secret restricted to the first `l` coefficient primes.
    pub(crate) fn at_level(&self, l: usize) -> RnsPoly {
        let indices: Vec<usize> = (0..l).collect();
        self.s.select_components(&indices)
    }

    /// Full secret over all `L + 1` primes (NTT domain).
    pub(crate) fn full(&self) -> &RnsPoly {
        &self.s
    }
}

/// The encryption public key `(b, a) = (-a·s + e, a)` at the top level.
#[derive(Debug, Clone)]
pub struct PublicKey {
    pub(crate) b: RnsPoly,
    pub(crate) a: RnsPoly,
}

/// One key-switching key: `L` digit pairs `(b_i, a_i)` over the extended
/// basis, in NTT form.
#[derive(Debug, Clone)]
pub struct KeySwitchKey {
    pub(crate) digits: Vec<(RnsPoly, RnsPoly)>,
}

impl KeySwitchKey {
    /// Number of digits (`= L`, one per coefficient prime).
    pub fn digit_count(&self) -> usize {
        self.digits.len()
    }
}

/// Relinearization key: switches `s²` back to `s` after a CCmult.
#[derive(Debug, Clone)]
pub struct RelinKey(pub(crate) KeySwitchKey);

/// Rotation keys, indexed by Galois exponent.
#[derive(Debug, Clone, Default)]
pub struct GaloisKeys {
    keys: HashMap<usize, KeySwitchKey>,
}

impl GaloisKeys {
    /// The key for Galois exponent `g`, if generated.
    pub fn key(&self, g: usize) -> Option<&KeySwitchKey> {
        self.keys.get(&g)
    }

    /// Number of rotation keys held.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if no keys are held.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Galois exponents with keys available.
    pub fn exponents(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.keys.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Rebuilds a key set from raw parts (deserialization).
    pub(crate) fn from_map(keys: HashMap<usize, KeySwitchKey>) -> Self {
        Self { keys }
    }
}

/// Generates all key material from a fresh ternary secret.
#[derive(Debug)]
pub struct KeyGenerator<'a, R: Rng> {
    ctx: &'a CkksContext,
    rng: R,
    secret: SecretKey,
    /// The small (signed) secret coefficients, kept to build Galois keys.
    secret_small: Vec<i64>,
}

impl<'a, R: Rng> KeyGenerator<'a, R> {
    /// Samples a fresh ternary secret and prepares the generator.
    pub fn new(ctx: &'a CkksContext, mut rng: R) -> Self {
        let n = ctx.degree();
        let small = sample_ternary(n, &mut rng);
        let ext = full_extended_moduli(ctx);
        let mut s = small_to_rns(&small, &ext);
        s.to_ntt(&full_extended_tables(ctx));
        Self {
            ctx,
            rng,
            secret: SecretKey { s },
            secret_small: small,
        }
    }

    /// The generated secret key.
    pub fn secret_key(&self) -> SecretKey {
        self.secret.clone()
    }

    /// Generates the public key `(-a·s + e, a)` at the top level.
    pub fn public_key(&mut self) -> PublicKey {
        let ctx = self.ctx;
        let l = ctx.max_level();
        let moduli = ctx.moduli_at(l);
        let tables = ctx.tables_at(l);
        let n = ctx.degree();

        let mut a = sample_uniform(n, moduli, &mut self.rng);
        a.to_ntt(&tables); // uniform stays uniform

        let mut e = small_to_rns(&sample_gaussian(n, STANDARD_SIGMA, &mut self.rng), moduli);
        e.to_ntt(&tables);

        let s = self.secret.at_level(l);
        let mut b = a.clone();
        b.mul_pointwise_assign(&s, moduli);
        b.neg_assign(moduli);
        b.add_assign(&e, moduli);
        PublicKey { b, a }
    }

    /// Generates a key-switching key from source secret `t` (NTT form
    /// over the full extended basis) to the main secret.
    ///
    /// One digit per group of `digit_group_size` coefficient primes: the
    /// gadget element of digit `j` is `≡ P (mod q_i)` for every prime in
    /// its group and zero everywhere else (`P = ∏ specials`).
    fn key_switch_key_for(&mut self, t: &RnsPoly) -> KeySwitchKey {
        let ctx = self.ctx;
        let big_l = ctx.max_level();
        let dnum = ctx.key_switch_digits();
        let group = ctx.params().digit_group_size();
        let ext_moduli = full_extended_moduli(ctx);
        let ext_tables = full_extended_tables(ctx);
        let n = ctx.degree();
        let s = self.secret.full();

        let digits = (0..dnum)
            .map(|j| {
                let mut a_j = sample_uniform(n, &ext_moduli, &mut self.rng);
                a_j.to_ntt(&ext_tables);
                let mut e_j = small_to_rns(
                    &sample_gaussian(n, STANDARD_SIGMA, &mut self.rng),
                    &ext_moduli,
                );
                e_j.to_ntt(&ext_tables);

                let mut b_j = a_j.clone();
                b_j.mul_pointwise_assign(s, &ext_moduli);
                b_j.neg_assign(&ext_moduli);
                b_j.add_assign(&e_j, &ext_moduli);

                // Gadget term on every prime of this digit's group:
                // g_j ≡ P (mod q_i), 0 elsewhere.
                let digit_primes = j * group..((j + 1) * group).min(big_l);
                for (i, &q_i) in ext_moduli
                    .iter()
                    .enumerate()
                    .take(digit_primes.end)
                    .skip(digit_primes.start)
                {
                    let p_mod_qi = ctx.special_mod_q()[i];
                    let t_i = t.component(i);
                    let b_comp = b_j.component_mut(i);
                    for (bj, &tj) in b_comp.iter_mut().zip(t_i) {
                        let add = fxhenn_math::modops::mul_mod(tj, p_mod_qi, q_i);
                        *bj = fxhenn_math::modops::add_mod(*bj, add, q_i);
                    }
                }
                (b_j, a_j)
            })
            .collect();
        KeySwitchKey { digits }
    }

    /// Generates the relinearization key (switches `s²` to `s`).
    pub fn relin_key(&mut self) -> RelinKey {
        let ext_moduli = full_extended_moduli(self.ctx);
        let mut s2 = self.secret.full().clone();
        let s = self.secret.full().clone();
        s2.mul_pointwise_assign(&s, &ext_moduli);
        RelinKey(self.key_switch_key_for(&s2))
    }

    /// Generates the conjugation key (Galois element `2N - 1`).
    pub fn conjugation_key(&mut self) -> KeySwitchKey {
        let ctx = self.ctx;
        let ext_moduli = full_extended_moduli(ctx);
        let ext_tables = full_extended_tables(ctx);
        let g = ctx.conjugation_exponent();
        let mut s_small = small_to_rns(&self.secret_small, &ext_moduli);
        s_small = s_small.automorphism(g, &ext_moduli);
        s_small.to_ntt(&ext_tables);
        self.key_switch_key_for(&s_small)
    }

    /// Generates Galois keys for left rotations by each of `steps` slots.
    pub fn galois_keys(&mut self, steps: &[usize]) -> GaloisKeys {
        let ctx = self.ctx;
        let ext_moduli = full_extended_moduli(ctx);
        let ext_tables = full_extended_tables(ctx);
        let mut keys = HashMap::new();
        for &r in steps {
            let g = ctx.galois_exponent(r);
            if g == 1 || keys.contains_key(&g) {
                continue;
            }
            // sigma_g(s) computed on the small secret, then lifted.
            let mut s_small = small_to_rns(&self.secret_small, &ext_moduli);
            debug_assert_eq!(s_small.domain(), Domain::Coeff);
            s_small = s_small.automorphism(g, &ext_moduli);
            s_small.to_ntt(&ext_tables);
            keys.insert(g, self.key_switch_key_for(&s_small));
        }
        GaloisKeys { keys }
    }
}

/// All coefficient primes plus the special prime.
pub(crate) fn full_extended_moduli(ctx: &CkksContext) -> Vec<u64> {
    ctx.extended_moduli_at(ctx.max_level())
}

/// NTT tables for the full extended basis.
pub(crate) fn full_extended_tables(ctx: &CkksContext) -> Vec<&fxhenn_math::ntt::NttTable> {
    ctx.extended_tables_at(ctx.max_level())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> CkksContext {
        CkksContext::new(CkksParams::insecure_toy(3))
    }

    #[test]
    fn secret_restriction_is_prefix_plus_special() {
        let ctx = setup();
        let kg = KeyGenerator::new(&ctx, StdRng::seed_from_u64(1));
        let sk = kg.secret_key();
        let at2 = sk.at_level(2);
        assert_eq!(at2.level_count(), 2);
        assert_eq!(at2.component(0), sk.full().component(0));
        assert_eq!(at2.component(1), sk.full().component(1));
    }

    #[test]
    fn public_key_satisfies_rlwe_relation() {
        // b + a*s should be small (the error e) when decoded.
        let ctx = setup();
        let mut kg = KeyGenerator::new(&ctx, StdRng::seed_from_u64(2));
        let pk = kg.public_key();
        let sk = kg.secret_key();
        let l = ctx.max_level();
        let moduli = ctx.moduli_at(l);
        let tables = ctx.tables_at(l);

        let mut check = pk.a.clone();
        check.mul_pointwise_assign(&sk.at_level(l), moduli);
        check.add_assign(&pk.b, moduli);
        check.to_coeff(&tables);
        let coeffs = ctx.centered_coefficients(&check, l);
        let bound = 6.0 * STANDARD_SIGMA + 1.0;
        for (j, &c) in coeffs.iter().enumerate() {
            assert!(c.abs() <= bound, "coefficient {j} = {c} not small");
        }
    }

    #[test]
    fn relin_key_digits_decrypt_to_gadget_times_s_squared() {
        // For digit i: b_i + a_i*s - g_i*s^2 should be small.
        let ctx = setup();
        let mut kg = KeyGenerator::new(&ctx, StdRng::seed_from_u64(3));
        let rk = kg.relin_key();
        let sk = kg.secret_key();
        let ext_moduli = full_extended_moduli(&ctx);
        let ext_tables = full_extended_tables(&ctx);

        let s = sk.full().clone();
        let mut s2 = s.clone();
        s2.mul_pointwise_assign(&s, &ext_moduli);

        for (i, (b_i, a_i)) in rk.0.digits.iter().enumerate() {
            let mut check = a_i.clone();
            check.mul_pointwise_assign(&s, &ext_moduli);
            check.add_assign(b_i, &ext_moduli);
            // subtract g_i * s^2: only component i carries p*s^2
            let q_i = ext_moduli[i];
            let p_mod = ctx.special_mod_q()[i];
            let comp = check.component_mut(i);
            for (cj, &s2j) in comp.iter_mut().zip(s2.component(i)) {
                let sub = fxhenn_math::modops::mul_mod(s2j, p_mod, q_i);
                *cj = fxhenn_math::modops::sub_mod(*cj, sub, q_i);
            }
            check.to_coeff(&ext_tables);
            // every residue should now be a small signed value
            let bound = (6.0 * STANDARD_SIGMA + 1.0) as i64;
            for (k, &q) in ext_moduli.iter().enumerate() {
                for (j, &v) in check.component(k).iter().enumerate() {
                    let signed = fxhenn_math::modops::mod_to_signed(v, q);
                    assert!(
                        signed.abs() <= bound,
                        "digit {i} residue {k} coeff {j}: {signed}"
                    );
                }
            }
        }
    }

    #[test]
    fn galois_keys_deduplicate_and_skip_identity() {
        let ctx = setup();
        let mut kg = KeyGenerator::new(&ctx, StdRng::seed_from_u64(4));
        let slots = ctx.degree() / 2;
        let gks = kg.galois_keys(&[0, 1, 1, 2, slots]); // 0 and slots are identity
        assert_eq!(gks.len(), 2);
        assert!(gks.key(ctx.galois_exponent(1)).is_some());
        assert!(gks.key(ctx.galois_exponent(2)).is_some());
        assert!(gks.key(1).is_none(), "identity rotation needs no key");
        assert!(!gks.is_empty());
        assert_eq!(gks.exponents().len(), 2);
    }

    #[test]
    fn keyswitch_key_has_one_digit_per_prime() {
        let ctx = setup();
        let mut kg = KeyGenerator::new(&ctx, StdRng::seed_from_u64(5));
        let rk = kg.relin_key();
        assert_eq!(rk.0.digit_count(), ctx.max_level());
        for (b, a) in &rk.0.digits {
            assert_eq!(b.level_count(), ctx.max_level() + 1);
            assert_eq!(a.level_count(), ctx.max_level() + 1);
        }
    }
}

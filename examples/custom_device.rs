//! Targeting a custom FPGA: define your own device, sweep its BRAM
//! budget, and watch the DSE trade latency for memory (the Fig. 9
//! experiment in miniature).
//!
//! Run with: `cargo run --release --example custom_device`

use fxhenn::ckks::CkksParams;
use fxhenn::dse::{explore_with_bram_cap, pareto_frontier, DsePoint};
use fxhenn::nn::{fxhenn_mnist, lower_network};
use fxhenn::FpgaDevice;

fn main() {
    let network = fxhenn_mnist(42);
    let params = CkksParams::fxhenn_mnist();
    let program = lower_network(&network, params.degree(), params.levels());

    // A hypothetical mid-range edge FPGA.
    let device = FpgaDevice::new("EdgeCustom", 1800, 1600, 0, 250.0, 8.0);
    println!(
        "custom device: {} ({} DSP, {} BRAM36K, {} W TDP)",
        device.name(),
        device.dsp_slices(),
        device.bram_blocks(),
        device.tdp_watts()
    );
    println!();
    println!(
        "{:>10} {:>10} {:>12} {:>16}",
        "BRAM cap", "designs", "best lat(s)", "best BRAM used"
    );

    let mut all_points: Vec<DsePoint> = Vec::new();
    for cap in (500..=1600).step_by(100) {
        let res = explore_with_bram_cap(&program, &device, params.prime_bits(), cap);
        match res.best {
            Some(best) => {
                println!(
                    "{:>10} {:>10} {:>12.3} {:>16}",
                    cap,
                    res.feasible.len(),
                    best.eval.latency_s,
                    best.eval.bram_peak
                );
                all_points.extend(res.feasible.iter().map(DsePoint::from));
            }
            None => println!("{:>10} {:>10} {:>12} {:>16}", cap, 0, "-", "-"),
        }
    }

    println!();
    println!("Pareto frontier over all explored designs:");
    for p in pareto_frontier(&all_points) {
        println!("  {:>5} blocks -> {:.3} s", p.bram_blocks, p.latency_s);
    }
}

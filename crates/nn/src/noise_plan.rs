//! Plan-time noise admission: the static analysis counterpart of the
//! evaluator's runtime floor.
//!
//! [`analyze_noise`] walks every [`HeLayerPlan`]'s operation trace
//! through the params-only [`NoiseModel`], carrying a worst-case
//! [`NoiseEstimate`] and a coarse message-magnitude estimate derived
//! from the actual layer weights. The walk predicts the budget (in
//! bits) remaining after every HE operation, so a circuit whose noise
//! trajectory crosses the configured floor is rejected *before* keys
//! are generated or a single NTT runs — naming the binding layer, the
//! same way the DSE names the binding resource of an infeasible device.
//!
//! The message-magnitude bookkeeping is a deliberate heuristic, matched
//! to the evaluator's runtime tracker: plaintext-weight products scale
//! the magnitude by the layer's largest weight times the RSS fan-in
//! (slot values treated as incoherent), squaring activations square it.
//! Exact per-slot bounds would require evaluating the network; the
//! point here is catching order-of-magnitude infeasibility (over-deep
//! chains, pathological weights) at admission time.

use crate::layers::Layer;
use crate::lowering::{HeCnnProgram, HeLayerPlan};
use crate::model::Network;
use fxhenn_ckks::noise::magnitude_add;
use fxhenn_ckks::{CkksParams, HeOpKind, NoiseEstimate, NoiseModel};
use std::fmt;

/// Default plan-time admission floor in budget bits. Runtime
/// enforcement defaults to 0 (refuse only once the message is
/// predicted gone); admission keeps a small safety margin on top so a
/// plan that *barely* clears zero — inside the heuristics' slack — is
/// still rejected.
pub const DEFAULT_PLAN_FLOOR_BITS: f64 = 2.0;

/// The predicted noise trajectory of one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerNoiseProfile {
    /// Layer name (Cnv1, Act1, …).
    pub name: String,
    /// Predicted budget bits on entry.
    pub entry_budget_bits: f64,
    /// Predicted budget bits after the layer's last operation.
    pub exit_budget_bits: f64,
    /// Worst predicted budget at any point inside the layer.
    pub min_budget_bits: f64,
    /// Ciphertext level after the layer.
    pub exit_level: usize,
}

/// The predicted noise trajectory of a whole lowered program.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseTrajectory {
    /// Per-layer profiles in execution order.
    pub layers: Vec<LayerNoiseProfile>,
    /// Predicted budget bits at decrypt time.
    pub terminal_budget_bits: f64,
    /// The admission floor the trajectory was checked against.
    pub floor_bits: f64,
}

impl NoiseTrajectory {
    /// The layer with the least predicted headroom — the one that
    /// binds the parameter choice.
    pub fn binding_layer(&self) -> Option<&LayerNoiseProfile> {
        self.layers
            .iter()
            .min_by(|a, b| a.min_budget_bits.total_cmp(&b.min_budget_bits))
    }
}

/// A circuit rejected at plan time: its predicted noise trajectory
/// crosses the admission floor (or runs out of levels to rescale).
#[derive(Clone, PartialEq)]
pub enum NoiseInfeasible {
    /// The predicted budget crosses the floor at a specific operation.
    BudgetExhausted {
        /// The binding layer.
        layer: String,
        /// The operation that crosses the floor.
        op: HeOpKind,
        /// Predicted budget bits after that operation.
        budget_bits: f64,
        /// The admission floor.
        floor_bits: f64,
    },
    /// The plan rescales below the last level.
    LevelExhausted {
        /// The binding layer.
        layer: String,
        /// Levels available at the offending rescale.
        have: usize,
        /// Levels a rescale needs.
        need: usize,
    },
}

impl NoiseInfeasible {
    /// The binding layer's name.
    pub fn layer(&self) -> &str {
        match self {
            NoiseInfeasible::BudgetExhausted { layer, .. }
            | NoiseInfeasible::LevelExhausted { layer, .. } => layer,
        }
    }
}

impl fmt::Display for NoiseInfeasible {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NoiseInfeasible::BudgetExhausted {
                layer,
                op,
                budget_bits,
                floor_bits,
            } => write!(
                f,
                "no noise-feasible evaluation: binding layer is {layer} \
                 ({op} drops the predicted budget to {budget_bits:.1} bits, \
                 floor {floor_bits:.1})"
            ),
            NoiseInfeasible::LevelExhausted { layer, have, need } => write!(
                f,
                "no noise-feasible evaluation: binding layer is {layer} \
                 (rescale needs {need} active primes, have {have})"
            ),
        }
    }
}

impl fmt::Debug for NoiseInfeasible {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl std::error::Error for NoiseInfeasible {}

/// Largest absolute value of a slice, at least `floor`.
fn max_abs(values: &[f64], floor: f64) -> f64 {
    values.iter().fold(floor, |b, &v| b.max(v.abs()))
}

/// Per-layer magnitude facts the walk needs from the network: the
/// largest plaintext operand the layer encodes (weights or scale
/// factors) and the message magnitude its output carries, given the
/// input's.
struct LayerMagnitude {
    /// Largest encoded plaintext value (weight vectors, masks,
    /// factors); at least 1 so the clamp in `after_mul_plain` matches.
    weight_bound: f64,
    /// Output message magnitude from input magnitude `m`.
    out_msg: Box<dyn Fn(f64) -> f64>,
}

fn layer_magnitude(layer: &Layer) -> LayerMagnitude {
    match layer {
        Layer::Conv(conv) => {
            let w = max_abs(&conv.weights, 0.0);
            let b = max_abs(&conv.bias, 0.0);
            let fan_in = (conv.in_channels * conv.kernel.0 * conv.kernel.1) as f64;
            LayerMagnitude {
                weight_bound: w.max(1.0),
                out_msg: Box::new(move |m| magnitude_add(m * w * fan_in.sqrt(), b)),
            }
        }
        Layer::Dense(d) => {
            let w = max_abs(&d.weights, 0.0);
            let b = max_abs(&d.bias, 0.0);
            let fan_in = d.in_features as f64;
            LayerMagnitude {
                weight_bound: w.max(1.0),
                out_msg: Box::new(move |m| magnitude_add(m * w * fan_in.sqrt(), b)),
            }
        }
        Layer::AvgPool(_) => LayerMagnitude {
            // Pool weights are 1/(kh·kw) ≤ 1 and averaging cannot grow
            // the message.
            weight_bound: 1.0,
            out_msg: Box::new(|m| m),
        },
        Layer::Scale(cs) => {
            let fm = max_abs(&cs.factors, 0.0);
            let sm = max_abs(&cs.shifts, 0.0);
            LayerMagnitude {
                weight_bound: fm.max(1.0),
                out_msg: Box::new(move |m| magnitude_add(m * fm, sm)),
            }
        }
        Layer::Activation(_) => LayerMagnitude {
            weight_bound: 1.0,
            out_msg: Box::new(|m| m * m),
        },
        Layer::SignAct(_) => LayerMagnitude {
            // The sign composition folds operands into [-1, 1] and the
            // selection x·(1+sgn)/2 cannot exceed the input magnitude.
            weight_bound: 1.0,
            out_msg: Box::new(|m| m),
        },
    }
}

/// Walks one layer's *per-ciphertext* operation chain, advancing
/// `est`, and returns the worst budget seen inside the layer.
///
/// The plan's trace records the layer's ops across all parallel output
/// ciphertexts; replaying them sequentially would compound noise that
/// accumulates side by side. Instead the walk reconstructs the chain
/// one output ciphertext experiences: op counts divide by
/// `output_cts`, parallel products collapse into one multiplication
/// whose add-tree grows noise by `sqrt(k)` (incoherent RSS), and the
/// multiplicative depth comes from the layer's level delta.
fn walk_layer(
    plan: &HeLayerPlan,
    model: &NoiseModel,
    est: &mut NoiseEstimate,
    msg_bound: f64,
    weight_bound: f64,
    floor_bits: f64,
    degree: usize,
) -> Result<f64, NoiseInfeasible> {
    let recs = plan.trace.records();
    let outs = plan.output_cts.max(1);
    let per = |kind: HeOpKind| {
        let n = recs.iter().filter(|r| r.kind == kind).count();
        n.div_ceil(outs)
    };
    let pc_mults = per(HeOpKind::PcMult);
    let cc_mults = per(HeOpKind::CcMult);
    let cc_adds = per(HeOpKind::CcAdd);
    let sign_stages = per(HeOpKind::Sign);
    let matmul_blocks = per(HeOpKind::CtMatmul);
    let key_switches =
        per(HeOpKind::Relinearize) + per(HeOpKind::Rotate) + per(HeOpKind::Conjugate);
    let rescales = plan.level_in.saturating_sub(plan.level_out);

    est.level = plan.level_in;
    let mut min_bits = est.budget_bits();
    let mut check = |est: &NoiseEstimate, op: HeOpKind| -> Result<(), NoiseInfeasible> {
        let bits = est.budget_bits();
        min_bits = min_bits.min(bits);
        if bits <= floor_bits {
            return Err(NoiseInfeasible::BudgetExhausted {
                layer: plan.name.clone(),
                op,
                budget_bits: bits,
                floor_bits,
            });
        }
        Ok(())
    };

    let mut remaining_rescales = rescales;
    // The add tree combining the parallel products: k-way incoherent
    // sum grows noise by sqrt(k). Applied once, after the first
    // product stage.
    let mut adds_pending = cc_adds;

    // Composite macro records expand into the constituent walk the
    // evaluator performs inside them (the trace suspension records only
    // the macro marker, so their squarings and key switches are not in
    // the primitive counts above). Each sign stage is square + relin +
    // rescale, coefficient fold + rescale, closing product + relin +
    // rescale; sign operands are bound-folded into [-1, 1].
    for _ in 0..sign_stages {
        for half in 0..2usize {
            *est = est
                .after_mul(est, 1.0, 1.0)
                .map_err(|_| NoiseInfeasible::BudgetExhausted {
                    layer: plan.name.clone(),
                    op: HeOpKind::Sign,
                    budget_bits: est.budget_bits(),
                    floor_bits,
                })?;
            *est = model.key_switch(est);
            check(est, HeOpKind::Sign)?;
            if remaining_rescales > 0 {
                *est = model
                    .rescale(est)
                    .map_err(|_| NoiseInfeasible::LevelExhausted {
                        layer: plan.name.clone(),
                        have: est.level,
                        need: 2,
                    })?;
                remaining_rescales -= 1;
                check(est, HeOpKind::Sign)?;
            }
            if half == 0 {
                // Coefficient fold between the two products: PCmult by
                // the largest stage coefficient (|b| ≤ 2.08) + rescale.
                *est = est.after_mul_plain(model.dropped_prime(est.level), 2.1);
                check(est, HeOpKind::Sign)?;
                if remaining_rescales > 0 {
                    *est = model
                        .rescale(est)
                        .map_err(|_| NoiseInfeasible::LevelExhausted {
                            layer: plan.name.clone(),
                            have: est.level,
                            need: 2,
                        })?;
                    remaining_rescales -= 1;
                    check(est, HeOpKind::Sign)?;
                }
            }
        }
    }
    // One blocked ct×ct matmul: BSGS mask transforms (one rescale), the
    // masked column shifts (one rescale), then the d accumulated
    // shifted products with the closing relinearize + rescale.
    let d = fxhenn_ckks::matmul_block_dim(degree);
    for _ in 0..matmul_blocks {
        for phase in 0..3usize {
            match phase {
                0 => {
                    *est = est.after_mul_plain(model.dropped_prime(est.level), 1.0);
                    let rots =
                        (fxhenn_ckks::bsgs_rotations(2 * d - 1) + fxhenn_ckks::bsgs_rotations(d))
                            as f64;
                    est.noise_std *= rots.sqrt().max(1.0);
                    *est = model.key_switch(est);
                }
                1 => {
                    *est = est.after_mul_plain(model.dropped_prime(est.level), 1.0);
                    *est = model.key_switch(est);
                }
                _ => {
                    *est = est.after_mul(est, msg_bound, msg_bound).map_err(|_| {
                        NoiseInfeasible::BudgetExhausted {
                            layer: plan.name.clone(),
                            op: HeOpKind::CtMatmul,
                            budget_bits: est.budget_bits(),
                            floor_bits,
                        }
                    })?;
                    est.noise_std *= (d as f64).sqrt();
                    *est = model.key_switch(est);
                }
            }
            check(est, HeOpKind::CtMatmul)?;
            if remaining_rescales > 0 {
                *est = model
                    .rescale(est)
                    .map_err(|_| NoiseInfeasible::LevelExhausted {
                        layer: plan.name.clone(),
                        have: est.level,
                        need: 2,
                    })?;
                remaining_rescales -= 1;
                check(est, HeOpKind::CtMatmul)?;
            }
        }
    }

    // Sequential multiplication stages one output ciphertext sees. The
    // level delta is the ground truth for depth: a layer that consumes
    // two levels really multiplies twice per output (e.g. mask then
    // weights), even though its trace shows one flat pile of parallel
    // PcMults. Pairing each mul stage with its rescale keeps the
    // scale bookkeeping honest — rescaling more often than multiplying
    // would divide the scale down unmatched and predict a collapse
    // that never happens. Multi-square polynomial stages (several
    // CCmults consuming several levels in sequence) each pair with one
    // rescale, rather than collapsing into a single stage.
    let cc_stages = if cc_mults > 0 {
        cc_mults.min(remaining_rescales.max(1))
    } else {
        0
    };
    let pc_stages = if pc_mults > 0 {
        remaining_rescales.saturating_sub(cc_stages).max(1)
    } else {
        0
    };

    for stage in 0..cc_stages {
        *est = est
            .after_mul(est, msg_bound, msg_bound)
            .map_err(|_| NoiseInfeasible::BudgetExhausted {
                layer: plan.name.clone(),
                op: HeOpKind::CcMult,
                budget_bits: est.budget_bits(),
                floor_bits,
            })?;
        check(est, HeOpKind::CcMult)?;
        if stage == 0 && adds_pending > 0 {
            est.noise_std *= ((1 + adds_pending) as f64).sqrt();
            adds_pending = 0;
            check(est, HeOpKind::CcAdd)?;
        }
        if remaining_rescales > 0 {
            *est = model
                .rescale(est)
                .map_err(|_| NoiseInfeasible::LevelExhausted {
                    layer: plan.name.clone(),
                    have: est.level,
                    need: 2,
                })?;
            remaining_rescales -= 1;
            check(est, HeOpKind::Rescale)?;
        }
    }
    for stage in 0..pc_stages {
        *est = est.after_mul_plain(model.dropped_prime(est.level), weight_bound);
        check(est, HeOpKind::PcMult)?;
        if stage == 0 && adds_pending > 0 {
            est.noise_std *= ((1 + adds_pending) as f64).sqrt();
            adds_pending = 0;
            check(est, HeOpKind::CcAdd)?;
        }
        if remaining_rescales > 0 {
            *est = model
                .rescale(est)
                .map_err(|_| NoiseInfeasible::LevelExhausted {
                    layer: plan.name.clone(),
                    have: est.level,
                    need: 2,
                })?;
            remaining_rescales -= 1;
            check(est, HeOpKind::Rescale)?;
        }
    }
    // Add-only layers (no product stage at all) still pay their tree.
    if adds_pending > 0 {
        est.noise_std *= ((1 + adds_pending) as f64).sqrt();
        check(est, HeOpKind::CcAdd)?;
    }
    for _ in 0..remaining_rescales {
        *est = model
            .rescale(est)
            .map_err(|_| NoiseInfeasible::LevelExhausted {
                layer: plan.name.clone(),
                have: est.level,
                need: 2,
            })?;
        check(est, HeOpKind::Rescale)?;
    }
    // Key switches (relinearize, rotate-and-sum reductions) applied
    // after the rescale: their additive noise is not divided down —
    // correct for post-rescale rotations, conservative for the
    // activation's relinearization.
    for _ in 0..key_switches {
        *est = model.key_switch(est);
    }
    check(est, HeOpKind::Rotate)?;
    Ok(min_bits)
}

/// Predicts the worst-case noise trajectory of a lowered program and
/// rejects it when the trajectory crosses `floor_bits` anywhere.
///
/// `net` must be the network `prog` was lowered from: the analysis
/// reads the actual layer weights to bound message magnitudes, so a
/// network with pathological weights fails here, naming the layer,
/// instead of at runtime (or worse, decrypting garbage).
///
/// # Errors
///
/// Returns [`NoiseInfeasible`] naming the binding layer and operation
/// when the predicted budget crosses the floor or a rescale runs out
/// of levels.
pub fn analyze_noise(
    prog: &HeCnnProgram,
    net: &Network,
    params: &CkksParams,
    floor_bits: f64,
) -> Result<NoiseTrajectory, NoiseInfeasible> {
    let model = NoiseModel::from_params(params);
    let mut est = model.fresh();
    // Inputs are assumed normalized into [-1, 1] (image convention).
    let mut msg = 1.0f64;
    let mut layers = Vec::with_capacity(prog.layers.len());
    for (plan, (_, layer)) in prog.layers.iter().zip(net.layers()) {
        let mag = layer_magnitude(layer);
        let entry = est.budget_bits();
        let min_bits = walk_layer(
            plan,
            &model,
            &mut est,
            msg,
            mag.weight_bound,
            floor_bits,
            params.degree(),
        )?;
        msg = (mag.out_msg)(msg);
        layers.push(LayerNoiseProfile {
            name: plan.name.clone(),
            entry_budget_bits: entry,
            exit_budget_bits: est.budget_bits(),
            min_budget_bits: min_bits,
            exit_level: est.level,
        });
    }
    Ok(NoiseTrajectory {
        layers,
        terminal_budget_bits: est.budget_bits(),
        floor_bits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lowering::try_lower_network;
    use crate::model::toy_mnist_like;
    use fxhenn_ckks::CkksParams;

    fn toy_setup() -> (Network, CkksParams, HeCnnProgram) {
        let net = toy_mnist_like(7);
        let params = CkksParams::insecure_toy(7);
        let prog =
            try_lower_network(&net, params.degree(), params.levels()).expect("toy net lowers");
        (net, params, prog)
    }

    #[test]
    fn toy_network_is_admitted_with_positive_terminal_budget() {
        let (net, params, prog) = toy_setup();
        let traj = analyze_noise(&prog, &net, &params, 0.0).expect("feasible");
        assert_eq!(traj.layers.len(), net.layer_count());
        assert!(
            traj.terminal_budget_bits > 0.0,
            "terminal budget {:.1} bits",
            traj.terminal_budget_bits
        );
        // Budget can only shrink along the trajectory.
        for w in traj.layers.windows(2) {
            assert!(
                w[1].exit_budget_bits <= w[0].exit_budget_bits + 1e-9,
                "budget grew from {} to {}",
                w[0].name,
                w[1].name
            );
        }
        let binding = traj.binding_layer().expect("non-empty");
        assert_eq!(
            binding.name,
            traj.layers.last().expect("non-empty").name,
            "deepest layer binds a monotone trajectory"
        );
    }

    #[test]
    fn pathological_weights_are_rejected_naming_the_layer() {
        let (src, params, _) = toy_setup();
        let mut layers = src.layers().to_vec();
        if let Layer::Conv(ref mut conv) = layers[0].1 {
            for w in conv.weights.iter_mut() {
                *w = 1e60;
            }
        } else {
            panic!("toy net starts with a conv");
        }
        let poisoned = Network::new("huge-weights", &[1, 9, 9], layers);
        let prog = try_lower_network(&poisoned, params.degree(), params.levels())
            .expect("lowering is magnitude-blind");
        let err = analyze_noise(&prog, &poisoned, &params, 0.0).expect_err("must reject");
        assert_eq!(err.layer(), "Cnv1", "binding layer is the poisoned conv");
        assert!(
            matches!(err, NoiseInfeasible::BudgetExhausted { .. }),
            "{err}"
        );
        assert!(err.to_string().contains("Cnv1"), "{err}");
    }

    #[test]
    fn raising_the_floor_rejects_an_otherwise_feasible_plan() {
        let (net, params, prog) = toy_setup();
        let traj = analyze_noise(&prog, &net, &params, 0.0).expect("feasible at 0");
        let binding = traj.binding_layer().expect("non-empty").clone();
        // A floor above the worst observed margin must reject, naming
        // the same binding layer the trajectory identified.
        let err = analyze_noise(&prog, &net, &params, binding.min_budget_bits + 1.0)
            .expect_err("floor above the binding margin");
        assert_eq!(err.layer(), binding.name, "{err}");
    }

    #[test]
    fn sign_activation_network_is_admitted() {
        // A sign-composition ReLU burns 8 levels (Low preset) in
        // multi-square stages; the walk must expand the composite
        // records and pair each product with one rescale instead of
        // collapsing them into a single stage (which would predict a
        // scale collapse and reject a perfectly feasible circuit).
        use crate::layers::{Conv2d, SignRelu};
        let conv = Conv2d::new(1, 1, (1, 1), (1, 1), vec![1.0], vec![0.0]);
        let net = Network::new(
            "conv-sgn",
            &[1, 2, 2],
            vec![
                ("Cnv1".to_string(), Layer::Conv(conv)),
                (
                    "Sgn1".to_string(),
                    Layer::SignAct(SignRelu::new(fxhenn_ckks::SignPreset::Low, 1.0)),
                ),
            ],
        );
        let params = CkksParams::insecure_toy(11);
        let prog =
            try_lower_network(&net, params.degree(), params.levels()).expect("deep enough");
        let traj = analyze_noise(&prog, &net, &params, 0.0).expect("feasible");
        assert!(
            traj.terminal_budget_bits > 0.0,
            "terminal budget {:.1} bits",
            traj.terminal_budget_bits
        );
        let sgn = &traj.layers[1];
        assert_eq!(sgn.exit_level, prog.layers[1].level_out);
        assert!(sgn.exit_budget_bits < sgn.entry_budget_bits);
    }

    #[test]
    fn trajectory_tracks_level_consumption() {
        let (net, params, prog) = toy_setup();
        let traj = analyze_noise(&prog, &net, &params, 0.0).expect("feasible");
        for (profile, plan) in traj.layers.iter().zip(&prog.layers) {
            assert_eq!(
                profile.exit_level, plan.level_out,
                "analysis level for {} disagrees with the plan",
                profile.name
            );
        }
    }
}

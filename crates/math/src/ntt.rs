//! Negacyclic number-theoretic transform over `Z_q[X]/(X^N + 1)`.
//!
//! The NTT is the fundamental building block of the Rescale and KeySwitch
//! HE operations and the performance bottleneck of the whole accelerator
//! (paper Sec. III, Table I). This software implementation mirrors the
//! HEAX-style butterfly datapath: Cooley–Tukey decimation-in-time for the
//! forward transform, Gentleman–Sande for the inverse, with Shoup
//! precomputed twiddles so each butterfly costs one high product, one low
//! product and a correction — the same arithmetic an FPGA NTT core
//! implements in DSP slices. Butterflies use Harvey-style lazy reduction
//! (intermediates in `[0, 4q)` forward / `[0, 2q)` inverse, normalized
//! once at the end), which removes the data-dependent correction branch
//! from the hot loop without changing the canonical output.
//!
//! `log2(N)` rounds of `N/2` butterflies each give the latency model of
//! paper Eq. (4): `LAT_NTT = log2(N) · N / (2 · nc_NTT)` cycles for
//! `nc_NTT` parallel cores.

use crate::error::MathError;
use crate::modops::{add_mod, inv_mod, pow_mod, sub_mod, ShoupMul, LANES};
use crate::prime::is_prime;

/// Precomputed tables for the negacyclic NTT of a fixed `(N, q)` pair.
#[derive(Debug, Clone)]
pub struct NttTable {
    n: usize,
    q: u64,
    /// psi^brv(i) in bit-reversed order, Shoup form; index 0 unused.
    fwd: Vec<ShoupMul>,
    /// psi^-brv(i) in bit-reversed order, Shoup form; index 0 unused.
    inv: Vec<ShoupMul>,
    /// N^{-1} mod q in Shoup form, folded into the last inverse stage.
    n_inv: ShoupMul,
    /// The primitive 2N-th root of unity used to build the tables.
    psi: u64,
}

impl NttTable {
    /// Builds NTT tables for ring degree `n` and prime modulus `q`,
    /// returning a [`MathError`] when the pair admits no negacyclic NTT.
    pub fn try_new(n: usize, q: u64) -> Result<Self, MathError> {
        if !n.is_power_of_two() || n < 2 {
            return Err(MathError::DegreeNotPowerOfTwo { n });
        }
        if !is_prime(q) {
            return Err(MathError::ModulusNotPrime { q });
        }
        if !(q - 1).is_multiple_of(2 * n as u64) {
            return Err(MathError::ModulusNotNttFriendly { q, n });
        }
        Ok(Self::build(n, q))
    }

    /// Builds NTT tables for ring degree `n` and prime modulus `q`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two of at least 2, if `q` is not
    /// prime, or if `q ≢ 1 (mod 2n)` (no primitive `2n`-th root exists).
    pub fn new(n: usize, q: u64) -> Self {
        assert!(
            n.is_power_of_two() && n >= 2,
            "ring degree must be a power of two >= 2"
        );
        assert!(is_prime(q), "NTT modulus must be prime");
        assert_eq!(
            (q - 1) % (2 * n as u64),
            0,
            "modulus must be 1 mod 2N for the negacyclic NTT"
        );
        Self::build(n, q)
    }

    fn build(n: usize, q: u64) -> Self {
        let psi = find_primitive_2n_root(n, q);
        let psi_inv = inv_mod(psi, q);
        let log_n = n.trailing_zeros();

        let mut fwd = Vec::with_capacity(n);
        let mut inv = Vec::with_capacity(n);
        for i in 0..n {
            let r = bit_reverse(i as u64, log_n);
            fwd.push(ShoupMul::new(pow_mod(psi, r, q), q));
            inv.push(ShoupMul::new(pow_mod(psi_inv, r, q), q));
        }
        let n_inv = ShoupMul::new(inv_mod(n as u64, q), q);
        Self {
            n,
            q,
            fwd,
            inv,
            n_inv,
            psi,
        }
    }

    /// Ring degree `N`.
    #[inline]
    pub fn degree(&self) -> usize {
        self.n
    }

    /// Prime modulus `q`.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.q
    }

    /// The primitive `2N`-th root of unity backing the tables.
    #[inline]
    pub fn root(&self) -> u64 {
        self.psi
    }

    /// In-place forward negacyclic NTT (coefficient → evaluation domain).
    ///
    /// The inner butterfly loop steps in [`LANES`]-wide blocks of fully
    /// independent lazy butterflies (the software `P_intra`); stages with
    /// `t < LANES` and remainders take the scalar path. Bit-identical to
    /// [`NttTable::forward_scalar`].
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != N`.
    pub fn forward(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "input length must equal ring degree");
        let q = self.q;
        let two_q = 2 * q;
        let mut t = self.n;
        let mut m = 1usize;
        while m < self.n {
            t >>= 1;
            for i in 0..m {
                let w = &self.fwd[m + i];
                let block = &mut a[2 * i * t..2 * (i + 1) * t];
                let (lo, hi) = block.split_at_mut(t);
                let mut lo4 = lo.chunks_exact_mut(LANES);
                let mut hi4 = hi.chunks_exact_mut(LANES);
                for (xs, ys) in (&mut lo4).zip(&mut hi4) {
                    // Harvey lazy butterfly, four independent lanes:
                    // inputs < 4q in, outputs < 4q out; the only
                    // correction is one conditional subtraction of 2q on
                    // `u` (q < 2^62 keeps 4q in u64).
                    let mut u = [xs[0], xs[1], xs[2], xs[3]];
                    for lane in &mut u {
                        if *lane >= two_q {
                            *lane -= two_q;
                        }
                    }
                    let v = w.mul_lazy_x4([ys[0], ys[1], ys[2], ys[3]]); // < 2q
                    for k in 0..LANES {
                        xs[k] = u[k] + v[k]; // < 4q
                        ys[k] = u[k] + two_q - v[k]; // < 4q
                    }
                }
                for (x, y) in lo4.into_remainder().iter_mut().zip(hi4.into_remainder()) {
                    let mut u = *x;
                    if u >= two_q {
                        u -= two_q;
                    }
                    let v = w.mul_lazy(*y);
                    *x = u + v;
                    *y = u + two_q - v;
                }
            }
            m <<= 1;
        }
        // Normalize from the lazy range [0, 4q) back to canonical [0, q).
        for x in a.iter_mut() {
            let mut v = *x;
            if v >= two_q {
                v -= two_q;
            }
            if v >= q {
                v -= q;
            }
            *x = v;
        }
    }

    /// Scalar reference forward transform: the textbook per-butterfly
    /// loop the lane-unrolled [`NttTable::forward`] is checked against
    /// bit-for-bit in tests. Not used on the hot path.
    pub fn forward_scalar(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "input length must equal ring degree");
        let q = self.q;
        let two_q = 2 * q;
        let mut t = self.n;
        let mut m = 1usize;
        while m < self.n {
            t >>= 1;
            for i in 0..m {
                let w = &self.fwd[m + i];
                let block = &mut a[2 * i * t..2 * (i + 1) * t];
                let (lo, hi) = block.split_at_mut(t);
                for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
                    let mut u = *x;
                    if u >= two_q {
                        u -= two_q;
                    }
                    let v = w.mul_lazy(*y); // < 2q
                    *x = u + v; // < 4q
                    *y = u + two_q - v; // < 4q
                }
            }
            m <<= 1;
        }
        for x in a.iter_mut() {
            let mut v = *x;
            if v >= two_q {
                v -= two_q;
            }
            if v >= q {
                v -= q;
            }
            *x = v;
        }
    }

    /// In-place inverse negacyclic NTT (evaluation → coefficient domain),
    /// including the `N^{-1}` scaling.
    ///
    /// Lane-unrolled like [`NttTable::forward`]; bit-identical to
    /// [`NttTable::inverse_scalar`].
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != N`.
    pub fn inverse(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "input length must equal ring degree");
        let q = self.q;
        let two_q = 2 * q;
        let mut t = 1usize;
        let mut m = self.n;
        while m > 1 {
            let h = m >> 1;
            let mut j1 = 0usize;
            for i in 0..h {
                let w = &self.inv[h + i];
                let block = &mut a[j1..j1 + 2 * t];
                let (lo, hi) = block.split_at_mut(t);
                let mut lo4 = lo.chunks_exact_mut(LANES);
                let mut hi4 = hi.chunks_exact_mut(LANES);
                for (xs, ys) in (&mut lo4).zip(&mut hi4) {
                    // Lazy Gentleman–Sande butterfly, four independent
                    // lanes: inputs < 2q in, outputs < 2q out
                    // (`u + 2q - v < 4q` is fine as a lazy multiplier
                    // input).
                    let u = [xs[0], xs[1], xs[2], xs[3]];
                    let v = [ys[0], ys[1], ys[2], ys[3]];
                    let mut d = [0u64; LANES];
                    for k in 0..LANES {
                        let mut s = u[k] + v[k]; // < 4q
                        if s >= two_q {
                            s -= two_q;
                        }
                        xs[k] = s; // < 2q
                        d[k] = u[k] + two_q - v[k];
                    }
                    let prod = w.mul_lazy_x4(d); // < 2q
                    ys.copy_from_slice(&prod);
                }
                for (x, y) in lo4.into_remainder().iter_mut().zip(hi4.into_remainder()) {
                    let u = *x;
                    let v = *y;
                    let mut s = u + v;
                    if s >= two_q {
                        s -= two_q;
                    }
                    *x = s;
                    *y = w.mul_lazy(u + two_q - v);
                }
                j1 += 2 * t;
            }
            t <<= 1;
            m = h;
        }
        // Fold in N^{-1} and normalize from [0, 2q) to canonical [0, q).
        let mut a4 = a.chunks_exact_mut(LANES);
        for xs in &mut a4 {
            let v = self.n_inv.mul_lazy_x4([xs[0], xs[1], xs[2], xs[3]]);
            for k in 0..LANES {
                xs[k] = if v[k] >= q { v[k] - q } else { v[k] };
            }
        }
        for x in a4.into_remainder() {
            let v = self.n_inv.mul_lazy(*x);
            *x = if v >= q { v - q } else { v };
        }
    }

    /// Scalar reference inverse transform (see
    /// [`NttTable::forward_scalar`]).
    pub fn inverse_scalar(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "input length must equal ring degree");
        let q = self.q;
        let two_q = 2 * q;
        let mut t = 1usize;
        let mut m = self.n;
        while m > 1 {
            let h = m >> 1;
            let mut j1 = 0usize;
            for i in 0..h {
                let w = &self.inv[h + i];
                let block = &mut a[j1..j1 + 2 * t];
                let (lo, hi) = block.split_at_mut(t);
                for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
                    let u = *x;
                    let v = *y;
                    let mut s = u + v; // < 4q
                    if s >= two_q {
                        s -= two_q;
                    }
                    *x = s; // < 2q
                    *y = w.mul_lazy(u + two_q - v); // < 2q
                }
                j1 += 2 * t;
            }
            t <<= 1;
            m = h;
        }
        for x in a.iter_mut() {
            let v = self.n_inv.mul_lazy(*x);
            *x = if v >= q { v - q } else { v };
        }
    }
}

/// Reverses the low `bits` bits of `x`.
#[inline]
pub fn bit_reverse(x: u64, bits: u32) -> u64 {
    if bits == 0 {
        0
    } else {
        x.reverse_bits() >> (64 - bits)
    }
}

/// Finds a primitive `2n`-th root of unity modulo `q`.
///
/// Tries successive bases `x`, computing `x^((q-1)/2n)`; a candidate `psi`
/// is primitive iff `psi^n ≡ -1 (mod q)` (since `2n` is a power of two,
/// any order dividing `2n` but not `n` must be exactly `2n`).
fn find_primitive_2n_root(n: usize, q: u64) -> u64 {
    let two_n = 2 * n as u64;
    let exp = (q - 1) / two_n;
    for x in 2..q {
        let psi = pow_mod(x, exp, q);
        if psi != 0 && pow_mod(psi, n as u64, q) == q - 1 {
            return psi;
        }
    }
    unreachable!("a primitive root always exists for prime q ≡ 1 mod 2N")
}

/// Schoolbook negacyclic polynomial multiplication, used as a test oracle.
///
/// Computes `a * b mod (X^N + 1, q)` in O(N²).
pub fn negacyclic_mul_naive(a: &[u64], b: &[u64], q: u64) -> Vec<u64> {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    let mut out = vec![0u64; n];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let p = ((ai as u128 * bj as u128) % q as u128) as u64;
            let k = i + j;
            if k < n {
                out[k] = add_mod(out[k], p, q);
            } else {
                out[k - n] = sub_mod(out[k - n], p, q);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::generate_ntt_primes;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_poly(n: usize, q: u64, rng: &mut StdRng) -> Vec<u64> {
        (0..n).map(|_| rng.gen_range(0..q)).collect()
    }

    #[test]
    fn bit_reverse_basics() {
        assert_eq!(bit_reverse(0b001, 3), 0b100);
        assert_eq!(bit_reverse(0b110, 3), 0b011);
        assert_eq!(bit_reverse(5, 0), 0);
        assert_eq!(bit_reverse(1, 1), 1);
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [4usize, 64, 256, 1024] {
            let q = generate_ntt_primes(30, n, 1)[0];
            let table = NttTable::new(n, q);
            let original = random_poly(n, q, &mut rng);
            let mut a = original.clone();
            table.forward(&mut a);
            assert_ne!(a, original, "transform should change a random poly");
            table.inverse(&mut a);
            assert_eq!(a, original);
        }
    }

    #[test]
    fn lane_unrolled_transforms_match_scalar_reference_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(11);
        // Degrees below, at and far above the lane width, odd-shaped
        // stage mixes included.
        for n in [2usize, 4, 8, 16, 64, 256, 1024, 4096] {
            let q = generate_ntt_primes(30, n, 1)[0];
            let table = NttTable::new(n, q);
            let original = random_poly(n, q, &mut rng);

            let mut fast = original.clone();
            let mut reference = original.clone();
            table.forward(&mut fast);
            table.forward_scalar(&mut reference);
            assert_eq!(fast, reference, "forward n={n}");

            table.inverse(&mut fast);
            table.inverse_scalar(&mut reference);
            assert_eq!(fast, reference, "inverse n={n}");
            assert_eq!(fast, original, "roundtrip n={n}");
        }
    }

    #[test]
    fn lane_unrolled_transforms_match_scalar_at_62_bit_modulus() {
        // The lazy ranges are tightest near the 2^62 modulus bound; the
        // lane path must agree with the scalar reference there too.
        let mut rng = StdRng::seed_from_u64(13);
        let n = 128;
        let q = generate_ntt_primes(61, n, 1)[0];
        let table = NttTable::new(n, q);
        let mut fast = random_poly(n, q, &mut rng);
        let mut reference = fast.clone();
        table.forward(&mut fast);
        table.forward_scalar(&mut reference);
        assert_eq!(fast, reference);
        table.inverse(&mut fast);
        table.inverse_scalar(&mut reference);
        assert_eq!(fast, reference);
    }

    #[test]
    fn root_is_primitive() {
        let n = 128;
        let q = generate_ntt_primes(30, n, 1)[0];
        let t = NttTable::new(n, q);
        assert_eq!(pow_mod(t.root(), n as u64, q), q - 1);
        assert_eq!(pow_mod(t.root(), 2 * n as u64, q), 1);
    }

    #[test]
    fn pointwise_product_matches_naive_negacyclic() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in [8usize, 32, 128] {
            let q = generate_ntt_primes(30, n, 1)[0];
            let table = NttTable::new(n, q);
            let a = random_poly(n, q, &mut rng);
            let b = random_poly(n, q, &mut rng);
            let expected = negacyclic_mul_naive(&a, &b, q);

            let mut fa = a.clone();
            let mut fb = b.clone();
            table.forward(&mut fa);
            table.forward(&mut fb);
            let mut fc: Vec<u64> = fa
                .iter()
                .zip(&fb)
                .map(|(&x, &y)| crate::modops::mul_mod(x, y, q))
                .collect();
            table.inverse(&mut fc);
            assert_eq!(fc, expected, "n={n}");
        }
    }

    #[test]
    fn transform_is_linear() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 64;
        let q = generate_ntt_primes(30, n, 1)[0];
        let table = NttTable::new(n, q);
        let a = random_poly(n, q, &mut rng);
        let b = random_poly(n, q, &mut rng);
        let sum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| add_mod(x, y, q)).collect();

        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fsum = sum.clone();
        table.forward(&mut fa);
        table.forward(&mut fb);
        table.forward(&mut fsum);
        for i in 0..n {
            assert_eq!(fsum[i], add_mod(fa[i], fb[i], q));
        }
    }

    #[test]
    fn constant_poly_transforms_to_constant_diagonal() {
        let n = 16;
        let q = generate_ntt_primes(30, n, 1)[0];
        let table = NttTable::new(n, q);
        let mut a = vec![0u64; n];
        a[0] = 5;
        table.forward(&mut a);
        assert!(a.iter().all(|&x| x == 5), "NTT of constant is constant");
    }

    #[test]
    fn multiplication_by_x_rotates_negacyclically() {
        let n = 8;
        let q = generate_ntt_primes(30, n, 1)[0];
        // (X^(n-1)) * X = X^n = -1 mod X^n + 1
        let mut a = vec![0u64; n];
        a[n - 1] = 3;
        let mut x = vec![0u64; n];
        x[1] = 1;
        let prod = negacyclic_mul_naive(&a, &x, q);
        assert_eq!(prod[0], q - 3);
        assert!(prod[1..].iter().all(|&c| c == 0));
    }

    #[test]
    #[should_panic(expected = "must equal ring degree")]
    fn forward_rejects_wrong_length() {
        let q = generate_ntt_primes(30, 16, 1)[0];
        let table = NttTable::new(16, q);
        let mut a = vec![0u64; 8];
        table.forward(&mut a);
    }

    #[test]
    #[should_panic(expected = "1 mod 2N")]
    fn rejects_incompatible_modulus() {
        // 97 is prime but 97-1=96 is not divisible by 2*64=128.
        NttTable::new(64, 97);
    }
}

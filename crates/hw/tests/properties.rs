//! Property-based tests of the hardware models: monotonicity and
//! consistency laws every resource/latency model must satisfy,
//! independent of calibration values.

use fxhenn_hw::buffers::{
    bank_factor, bn_poly_blocks, layer_bram_blocks, module_bram_blocks, poly_base_blocks,
    stall_factor,
};
use fxhenn_hw::layer::LayerShape;
use fxhenn_hw::modules::{elem_latency_cycles, ntt_latency_cycles, HeOpModule};
use fxhenn_hw::{FpgaDevice, ModuleConfig, OpClass};
use fxhenn_nn::HeLayerClass;
use proptest::prelude::*;

fn nc_strategy() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![1usize, 2, 4, 8])
}

fn config_strategy() -> impl Strategy<Value = ModuleConfig> {
    (nc_strategy(), 1usize..=7, 1usize..=4).prop_map(|(nc_ntt, p_intra, p_inter)| ModuleConfig {
        nc_ntt,
        p_intra,
        p_inter,
    })
}

fn class_strategy() -> impl Strategy<Value = OpClass> {
    prop::sample::select(OpClass::ALL.to_vec())
}

proptest! {
    #[test]
    fn ntt_latency_halves_exactly_with_core_doubling(
        log_n in 8u32..15,
        nc in prop::sample::select(vec![1usize, 2, 4]),
    ) {
        let n = 1usize << log_n;
        prop_assert_eq!(
            ntt_latency_cycles(n, nc),
            2 * ntt_latency_cycles(n, 2 * nc)
        );
    }

    #[test]
    fn op_latency_never_increases_with_intra_parallelism(
        class in class_strategy(),
        cfg in config_strategy(),
        level in 1usize..=7,
    ) {
        prop_assume!(cfg.p_intra < 7);
        let n = 8192;
        let a = HeOpModule::new(class, cfg).op_latency_cycles(level, n);
        let deeper = ModuleConfig { p_intra: cfg.p_intra + 1, ..cfg };
        let b = HeOpModule::new(class, deeper).op_latency_cycles(level, n);
        prop_assert!(b <= a, "latency grew: {} -> {} for {:?}", a, b, class);
    }

    #[test]
    fn op_latency_grows_with_level(
        class in class_strategy(),
        cfg in config_strategy(),
        level in 1usize..7,
    ) {
        let n = 8192;
        let a = HeOpModule::new(class, cfg).op_latency_cycles(level, n);
        let b = HeOpModule::new(class, cfg).op_latency_cycles(level + 1, n);
        prop_assert!(b >= a, "latency shrank with level: {} -> {} for {:?}", a, b, class);
    }

    #[test]
    fn ntt_bound_ops_speed_up_with_cores(
        cfg in config_strategy(),
        level in 1usize..=7,
    ) {
        prop_assume!(cfg.nc_ntt < 8);
        let n = 8192;
        for class in [OpClass::Rescale, OpClass::KeySwitch] {
            let a = HeOpModule::new(class, cfg).op_latency_cycles(level, n);
            let more = ModuleConfig { nc_ntt: cfg.nc_ntt * 2, ..cfg };
            let b = HeOpModule::new(class, more).op_latency_cycles(level, n);
            prop_assert!(b < a, "more cores did not help {:?}: {} -> {}", class, a, b);
        }
        // Elementwise ops are nc-independent.
        for class in [OpClass::Add, OpClass::PcMult, OpClass::CcMult] {
            let a = HeOpModule::new(class, cfg).op_latency_cycles(level, n);
            let more = ModuleConfig { nc_ntt: cfg.nc_ntt * 2, ..cfg };
            let b = HeOpModule::new(class, more).op_latency_cycles(level, n);
            prop_assert_eq!(a, b, "elementwise op {:?} must ignore nc", class);
        }
    }

    #[test]
    fn dsp_is_exactly_multiplicative_in_parallelism(
        class in class_strategy(),
        cfg in config_strategy(),
    ) {
        let unit = HeOpModule::new(
            class,
            ModuleConfig { nc_ntt: cfg.nc_ntt, p_intra: 1, p_inter: 1 },
        )
        .dsp_usage();
        let full = HeOpModule::new(class, cfg).dsp_usage();
        prop_assert_eq!(full, unit * cfg.p_intra * cfg.p_inter);
    }

    #[test]
    fn poly_blocks_scale_with_width_and_degree(
        log_n in 9u32..15,
        w in 20u32..=54,
    ) {
        let n = 1usize << log_n;
        let base = poly_base_blocks(n, w);
        prop_assert!(base >= 1);
        prop_assert!(poly_base_blocks(2 * n, w) >= 2 * base - 1, "degree doubling");
        prop_assert!(poly_base_blocks(n, w + 6) >= base, "wider words");
    }

    #[test]
    fn bank_factor_and_bn_blocks_consistent(nc in nc_strategy()) {
        let n = 8192;
        let w = 30;
        prop_assert_eq!(
            bn_poly_blocks(n, w, nc),
            bank_factor(nc) * poly_base_blocks(n, w)
        );
    }

    #[test]
    fn module_bram_grows_with_level(
        class in class_strategy(),
        nc in nc_strategy(),
        level in 1usize..7,
    ) {
        let a = module_bram_blocks(class, level, 8192, 30, nc);
        let b = module_bram_blocks(class, level + 1, 8192, 30, nc);
        prop_assert!(b >= a);
    }

    #[test]
    fn layer_bram_monotone_in_all_axes(
        cfg in config_strategy(),
        level in 2usize..=7,
        is_act in any::<bool>(),
    ) {
        let mk = |class, lvl, c: &ModuleConfig| {
            layer_bram_blocks(
                &LayerShape {
                    class,
                    is_activation: is_act,
                    level: lvl,
                    degree: 8192,
                    w_bits: 30,
                },
                c,
            )
        };
        for class in [HeLayerClass::Nks, HeLayerClass::Ks] {
            let base = mk(class, level, &cfg);
            prop_assert!(mk(class, level - 1, &cfg) <= base, "level shrink");
            let wider = ModuleConfig { p_inter: cfg.p_inter + 1, ..cfg };
            let wider_blocks = mk(class, level, &wider);
            prop_assert!(wider_blocks >= base, "p_inter growth");
            if cfg.p_intra < 7 {
                let deeper = ModuleConfig { p_intra: cfg.p_intra + 1, ..cfg };
                let deeper_blocks = mk(class, level, &deeper);
                prop_assert!(deeper_blocks >= base, "p_intra growth");
            }
        }
    }

    #[test]
    fn stall_factor_is_bounded_and_monotone(
        demand in 1usize..2000,
        alloc_pct in 0u32..=100,
    ) {
        let alloc = demand * alloc_pct as usize / 100;
        for class in [HeLayerClass::Nks, HeLayerClass::Ks] {
            let f = stall_factor(alloc, demand, class);
            prop_assert!(f >= 1.0);
            prop_assert!(f <= 140.0);
            // More allocation can only help.
            if alloc < demand {
                let f2 = stall_factor(alloc + 1, demand, class);
                prop_assert!(f2 <= f + 1e-9);
            }
        }
    }

    #[test]
    fn uram_conversion_bounded_by_four(bank_words in 1usize..100_000) {
        let d = FpgaDevice::acu15eg();
        let eq = d.uram_as_bram_blocks(bank_words);
        let lower = d.uram_blocks(); // ratio is at least 1 for any bank depth
        prop_assert!(eq >= lower);
        prop_assert!(eq <= 4 * d.uram_blocks());
    }

    #[test]
    fn elem_latency_matches_eq5(log_n in 8u32..15) {
        let n = 1usize << log_n;
        prop_assert_eq!(elem_latency_cycles(n), (n / 2) as u64);
    }
}

//! Table II: a preliminary (per-layer dedicated modules, nc = 2)
//! accelerator for LoLa-MNIST on ACU9EG — per-layer DSP and BRAM usage,
//! showing the >200 % aggregate BRAM demand that motivates FxHENN.
//!
//! Run with: `cargo run --release -p fxhenn-bench --bin table2`

use fxhenn::dse::baseline::layer_dedicated_dsp;
use fxhenn::hw::buffers::layer_bram_blocks;
use fxhenn::hw::layer::LayerShape;
use fxhenn::hw::{ModuleConfig, ModuleSet};
use fxhenn_bench::{delta, header, mnist_program, pct, MNIST_N, MNIST_W};

fn main() {
    header(
        "Table II — preliminary per-layer design for LoLa-MNIST on ACU9EG (nc=2)",
        "Table II",
    );
    let prog = mnist_program();
    let set = ModuleSet::minimal();
    let cfg = ModuleConfig::minimal();

    // Paper's per-layer rows: (name, ops, dsp%, bram%).
    let paper = [
        ("Cnv1", "OP1,OP2,OP4", 10.0, 25.0),
        ("Act1", "OP3,OP4,OP5", 18.0, 57.0),
        ("Fc1", "OP1,OP2,OP4,OP5", 15.0, 53.0),
        ("Act2", "OP3,OP4,OP5", 12.0, 39.0),
        ("Fc2", "OP1,OP2,OP4,OP5", 10.0, 32.0),
    ];

    println!(
        "{:<6} {:<18} | {:>7} {:>8} {:>6} | {:>7} {:>8} {:>6}",
        "Layer", "HE Operations", "DSP%", "(paper)", "Δ", "BRAM%", "(paper)", "Δ"
    );
    let mut dsp_sum = 0.0;
    let mut bram_sum = 0.0;
    for (plan, (name, ops, paper_dsp, paper_bram)) in prog.layers.iter().zip(paper) {
        assert_eq!(plan.name, name);
        let dsp = pct(layer_dedicated_dsp(plan, &set), 2520);
        let shape = LayerShape::from_plan(plan, MNIST_N, MNIST_W);
        let bram = pct(layer_bram_blocks(&shape, &cfg), 912);
        dsp_sum += dsp;
        bram_sum += bram;
        println!(
            "{:<6} {:<18} | {:>7.1} {:>8.1} {:>6} | {:>7.1} {:>8.1} {:>6}",
            name,
            ops,
            dsp,
            paper_dsp,
            delta(dsp, paper_dsp),
            bram,
            paper_bram,
            delta(bram, paper_bram),
        );
    }
    println!(
        "{:<6} {:<18} | {:>7.1} {:>8.1} {:>6} | {:>7.1} {:>8.1} {:>6}",
        "Sum",
        "",
        dsp_sum,
        65.0,
        delta(dsp_sum, 65.0),
        bram_sum,
        206.0,
        delta(bram_sum, 206.0),
    );
    println!();
    println!(
        "Key observation reproduced: aggregate BRAM demand ({bram_sum:.0}%) far exceeds \
         the chip while DSP stays under-utilized — per-layer dedication cannot work."
    );
}

//! Randomness for lattice cryptography: uniform, ternary and discrete
//! Gaussian polynomial sampling.
//!
//! CKKS key generation draws the secret from a ternary distribution and
//! errors from a discrete Gaussian with standard deviation σ ≈ 3.2 (the
//! HomomorphicEncryption.org standard used by the parameter sets the paper
//! adopts).

use crate::modops::signed_to_mod;
use crate::poly::{Domain, RnsPoly};
use rand::Rng;

/// Standard error deviation of the HE standard (σ = 3.2).
pub const STANDARD_SIGMA: f64 = 3.2;

/// Samples a polynomial with residues uniform in `[0, q_i)` for every
/// prime, in the coefficient domain.
pub fn sample_uniform<R: Rng + ?Sized>(n: usize, moduli: &[u64], rng: &mut R) -> RnsPoly {
    let residues = moduli
        .iter()
        .map(|&q| (0..n).map(|_| rng.gen_range(0..q)).collect())
        .collect();
    RnsPoly::from_residues(residues, Domain::Coeff)
}

/// Samples small signed coefficients uniformly from `{-1, 0, 1}`.
pub fn sample_ternary<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<i64> {
    (0..n).map(|_| rng.gen_range(-1i64..=1)).collect()
}

/// Samples small signed coefficients from a rounded Gaussian with
/// standard deviation `sigma`, truncated at `±6σ`.
pub fn sample_gaussian<R: Rng + ?Sized>(n: usize, sigma: f64, rng: &mut R) -> Vec<i64> {
    assert!(sigma > 0.0, "sigma must be positive");
    let bound = (6.0 * sigma).ceil() as i64;
    (0..n)
        .map(|_| {
            // Box-Muller; rejection keeps the tail bounded for worst-case
            // noise analysis.
            loop {
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let v = (g * sigma).round() as i64;
                if v.abs() <= bound {
                    return v;
                }
            }
        })
        .collect()
}

/// Lifts small signed coefficients into an RNS polynomial (coefficient
/// domain), reducing each value modulo every prime.
pub fn small_to_rns(values: &[i64], moduli: &[u64]) -> RnsPoly {
    let residues = moduli
        .iter()
        .map(|&q| values.iter().map(|&v| signed_to_mod(v, q)).collect())
        .collect();
    RnsPoly::from_residues(residues, Domain::Coeff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::generate_ntt_primes;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_sample_in_range_and_varied() {
        let moduli = generate_ntt_primes(30, 64, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let p = sample_uniform(64, &moduli, &mut rng);
        assert_eq!(p.level_count(), 2);
        for (i, &q) in moduli.iter().enumerate() {
            assert!(p.component(i).iter().all(|&x| x < q));
        }
        // Overwhelmingly unlikely to be all equal.
        let c = p.component(0);
        assert!(c.iter().any(|&x| x != c[0]));
    }

    #[test]
    fn ternary_values_bounded() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = sample_ternary(4096, &mut rng);
        assert!(s.iter().all(|&v| (-1..=1).contains(&v)));
        // All three values should occur in a 4096-draw sample.
        for target in [-1i64, 0, 1] {
            assert!(s.contains(&target), "missing value {target}");
        }
    }

    #[test]
    fn gaussian_statistics_plausible() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = sample_gaussian(20_000, STANDARD_SIGMA, &mut rng);
        let mean: f64 = s.iter().map(|&v| v as f64).sum::<f64>() / s.len() as f64;
        let var: f64 =
            s.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / s.len() as f64;
        assert!(mean.abs() < 0.1, "mean {mean} too far from 0");
        assert!(
            (var - STANDARD_SIGMA * STANDARD_SIGMA).abs() < 1.5,
            "variance {var} too far from sigma^2"
        );
        let bound = (6.0 * STANDARD_SIGMA).ceil() as i64;
        assert!(s.iter().all(|&v| v.abs() <= bound));
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn gaussian_rejects_non_positive_sigma() {
        let mut rng = StdRng::seed_from_u64(4);
        sample_gaussian(8, 0.0, &mut rng);
    }

    #[test]
    fn small_to_rns_reduces_consistently() {
        let moduli = generate_ntt_primes(30, 8, 2);
        let vals = [-3i64, -1, 0, 1, 2, 5, -7, 9];
        let p = small_to_rns(&vals, &moduli);
        for (i, &q) in moduli.iter().enumerate() {
            for (j, &v) in vals.iter().enumerate() {
                assert_eq!(p.component(i)[j], signed_to_mod(v, q));
            }
        }
    }
}

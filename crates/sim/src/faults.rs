//! Deterministic fault injection for robustness testing.
//!
//! The helpers here corrupt the *inputs* of the inference path — wire
//! blobs, network weights, BRAM grant vectors — so the fault-injection
//! harness can assert that every corruption surfaces as a typed error
//! (never a panic, never a silently wrong answer). All corruptions are
//! deterministic: the same fault parameters always produce the same
//! corrupted artifact, so failures reproduce byte-for-byte.

use fxhenn_nn::{Layer, Network};
use std::cell::Cell;
use std::time::Duration;

thread_local! {
    static STATION_STALL: Cell<Option<Duration>> = const { Cell::new(None) };
}

/// Hang-class fault: runs `f` with every simulated station claim on
/// this thread stalled by `delay` of real wall-clock time, modeling a
/// module station that never (or pathologically slowly) completes. With
/// a large `delay` and a trace of thousands of records the simulation
/// would effectively never finish — which is exactly what the deadline
/// tests need: the budgeted simulator must surface a typed `Cancelled`
/// instead of wedging. The override is thread-local and restored when
/// `f` returns.
pub fn with_station_stall<R>(delay: Duration, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Duration>);
    impl Drop for Restore {
        fn drop(&mut self) {
            STATION_STALL.with(|d| d.set(self.0));
        }
    }
    let prev = STATION_STALL.with(|d| d.replace(Some(delay)));
    let _restore = Restore(prev);
    f()
}

/// The stall the simulator applies per station claim on this thread
/// (`None` outside [`with_station_stall`]).
pub fn station_stall() -> Option<Duration> {
    STATION_STALL.with(|d| d.get())
}

/// Keeps only the first `keep` bytes of a serialized blob, simulating a
/// truncated file or interrupted transfer.
pub fn truncate_blob(blob: &[u8], keep: usize) -> Vec<u8> {
    blob[..keep.min(blob.len())].to_vec()
}

/// Flips one bit of a serialized blob, simulating in-flight or at-rest
/// corruption. `bit` addresses the blob MSB-first and wraps modulo the
/// blob length, so any index is valid on a non-empty blob.
pub fn flip_bit(blob: &[u8], bit: usize) -> Vec<u8> {
    let mut out = blob.to_vec();
    if !out.is_empty() {
        let bit = bit % (out.len() * 8);
        out[bit / 8] ^= 0x80 >> (bit % 8);
    }
    out
}

/// Every proper prefix length of a blob, shortest first — the sweep the
/// truncation fuzzer walks.
pub fn prefix_lengths(blob: &[u8]) -> impl Iterator<Item = usize> {
    0..blob.len()
}

/// Overwrites one weight of the first weighted layer (convolution or
/// dense) with `value` — e.g. `f64::NAN` to model a corrupted model
/// file. Returns `false` if the network has no weighted layer.
pub fn poison_first_weight(net: &mut Network, value: f64) -> bool {
    for (_, layer) in net.layers_mut() {
        match layer {
            Layer::Conv(c) => {
                if let Some(w) = c.weights.first_mut() {
                    *w = value;
                    return true;
                }
            }
            Layer::Dense(d) => {
                if let Some(w) = d.weights.first_mut() {
                    *w = value;
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

/// Scales every weight and bias of the network by `factor` — a huge
/// factor models a mis-scaled (wrong fixed-point exponent) model file
/// that exhausts the noise budget mid-inference.
pub fn amplify_weights(net: &mut Network, factor: f64) {
    for (_, layer) in net.layers_mut() {
        match layer {
            Layer::Conv(c) => {
                for w in c.weights.iter_mut().chain(c.bias.iter_mut()) {
                    *w *= factor;
                }
            }
            Layer::Dense(d) => {
                for w in d.weights.iter_mut().chain(d.bias.iter_mut()) {
                    *w *= factor;
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxhenn_nn::toy_mnist_like;

    #[test]
    fn truncation_is_a_prefix() {
        let blob = vec![1u8, 2, 3, 4];
        assert_eq!(truncate_blob(&blob, 2), vec![1, 2]);
        assert_eq!(truncate_blob(&blob, 9), blob, "keep beyond len is identity");
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let blob = vec![0u8; 8];
        let flipped = flip_bit(&blob, 13);
        let differing: u32 = blob
            .iter()
            .zip(&flipped)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(differing, 1);
        assert_eq!(flip_bit(&blob, 13), flipped, "deterministic");
        assert_eq!(flip_bit(&blob, 13 + 64), flipped, "index wraps");
    }

    #[test]
    fn poisoning_hits_the_first_conv() {
        let mut net = toy_mnist_like(3);
        assert!(poison_first_weight(&mut net, f64::NAN));
        let has_nan = net.layers().iter().any(|(_, l)| match l {
            Layer::Conv(c) => c.weights.iter().any(|w| w.is_nan()),
            _ => false,
        });
        assert!(has_nan);
    }

    #[test]
    fn amplification_scales_everything() {
        let mut net = toy_mnist_like(3);
        let before = net.forward(&fxhenn_nn::synthetic_input(&net, 1));
        amplify_weights(&mut net, 2.0);
        let after = net.forward(&fxhenn_nn::synthetic_input(&net, 1));
        assert_ne!(before.into_data(), after.into_data());
    }
}

//! Typed errors and infeasibility diagnosis for the design space
//! explorer.
//!
//! When no design fits, the explorer does not merely say "no": it names
//! the *binding constraint* — whether the DSP budget (Eq. 7/10) or the
//! Bn/Bb BRAM budget (Eqs. 8–9) is what excludes every candidate — and
//! proposes the *nearest feasible relaxation*: the smallest resource
//! increase or `nc_NTT` downgrade that admits a design.
//!
//! `Debug` delegates to `Display` so an `expect` on a `try_` result
//! panics with the same human-readable text.

use fxhenn_math::budget::BudgetStop;
use std::fmt;

/// The resource constraint that excludes every candidate design.
#[derive(Clone, PartialEq, Eq)]
pub enum BindingConstraint {
    /// Even the cheapest point in the space needs more DSP slices than
    /// the device provides (Eq. 7 vs the device capacity in Eq. 10).
    Dsp {
        /// DSP slices of the cheapest enumerated point.
        required_min: usize,
        /// DSP slices the device provides.
        available: usize,
    },
    /// Every DSP-feasible point overflows the on-chip buffer budget
    /// (Bn/Bb blocks of Eqs. 8–9 vs the URAM-converted BRAM budget).
    Bram {
        /// Peak block demand of the least-demanding DSP-feasible point.
        required_min_blocks: usize,
        /// The budget that point was measured against.
        budget_blocks: usize,
    },
}

impl fmt::Display for BindingConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindingConstraint::Dsp {
                required_min,
                available,
            } => write!(
                f,
                "DSP (cheapest point needs {required_min} slices, device has {available})"
            ),
            BindingConstraint::Bram {
                required_min_blocks,
                budget_blocks,
            } => write!(
                f,
                "BRAM (least-demanding point needs {required_min_blocks} blocks, \
                 budget is {budget_blocks})"
            ),
        }
    }
}

impl fmt::Debug for BindingConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// The smallest change that admits at least one design.
#[derive(Clone, PartialEq, Eq)]
pub enum Relaxation {
    /// Provision this many additional DSP slices.
    RaiseDsp {
        /// Additional slices beyond the device capacity.
        additional: usize,
    },
    /// Provision this many additional BRAM36K blocks.
    RaiseBramBudget {
        /// Additional blocks beyond the current budget.
        additional_blocks: usize,
    },
    /// Shrink the NTT core count below the search space's floor; fewer
    /// banked cores need fewer partitioned Bn blocks (Sec. VI-A).
    DowngradeNtt {
        /// The `nc_NTT` value that admits a design.
        to: usize,
    },
}

impl fmt::Display for Relaxation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Relaxation::RaiseDsp { additional } => {
                write!(f, "add at least {additional} DSP slices")
            }
            Relaxation::RaiseBramBudget { additional_blocks } => {
                write!(f, "raise the BRAM budget by {additional_blocks} blocks")
            }
            Relaxation::DowngradeNtt { to } => {
                write!(f, "downgrade nc_NTT to {to}")
            }
        }
    }
}

impl fmt::Debug for Relaxation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A structured explanation of why the explorer found no design.
#[derive(Clone, PartialEq, Eq)]
pub struct InfeasibleDiagnosis {
    /// The device the search ran against.
    pub device: String,
    /// The constraint that excluded every candidate.
    pub binding: BindingConstraint,
    /// The nearest change that admits a design, when one exists.
    pub relaxation: Option<Relaxation>,
}

impl fmt::Display for InfeasibleDiagnosis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no feasible accelerator design fits device {}: binding constraint is {}",
            self.device, self.binding
        )?;
        match &self.relaxation {
            Some(r) => write!(f, "; nearest relaxation: {r}"),
            None => write!(f, "; no single-resource relaxation admits a design"),
        }
    }
}

impl fmt::Debug for InfeasibleDiagnosis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A failed design space exploration.
#[derive(Clone, PartialEq)]
pub enum DseError {
    /// A search axis has no options, so the space enumerates nothing.
    EmptySearchSpace,
    /// A derived device description (e.g. a BRAM cap of zero) is invalid.
    Device(fxhenn_hw::ModelError),
    /// No candidate satisfies the device constraints (Eq. 10).
    Infeasible(InfeasibleDiagnosis),
    /// The execution budget expired or was cancelled mid-enumeration;
    /// the partial sweep is discarded rather than reported as if it
    /// covered the space.
    Cancelled(BudgetStop),
}

impl DseError {
    /// The structured diagnosis, when the error is [`DseError::Infeasible`].
    pub fn diagnosis(&self) -> Option<&InfeasibleDiagnosis> {
        match self {
            DseError::Infeasible(d) => Some(d),
            _ => None,
        }
    }
}

impl fmt::Display for DseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DseError::EmptySearchSpace => {
                f.write_str("design space is empty: every search axis needs at least one option")
            }
            DseError::Device(e) => fmt::Display::fmt(e, f),
            DseError::Infeasible(d) => fmt::Display::fmt(d, f),
            DseError::Cancelled(stop) => write!(f, "exploration stopped: {stop}"),
        }
    }
}

impl From<BudgetStop> for DseError {
    fn from(stop: BudgetStop) -> Self {
        DseError::Cancelled(stop)
    }
}

impl fmt::Debug for DseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl std::error::Error for DseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DseError::Cancelled(stop) => Some(stop),
            _ => None,
        }
    }
}

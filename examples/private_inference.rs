//! The full privacy-preserving ML story on one page: train an
//! HE-friendly network on a synthetic task (plaintext, offline), budget
//! the noise analytically, serialize the client's keys and ciphertexts
//! over a simulated wire, run encrypted inference, and check the
//! decrypted classification against the plaintext network.
//!
//! Run with: `cargo run --release --example private_inference`

use fxhenn::ckks::noise::{square_step, NoiseEstimate};
use fxhenn::ckks::serialize::{decode_ciphertext, encode_ciphertext};
use fxhenn::ckks::{CkksContext, CkksParams, Decryptor, Encryptor, KeyGenerator};
use fxhenn::nn::executor::{encrypt_input, HeCnnExecutor};
use fxhenn::nn::{accuracy, lower_network, train, SyntheticTask, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Train (plaintext, offline — the server's job in MLaaS).
    println!("== 1. training an HE-friendly network on a synthetic task ==");
    let mut net = fxhenn::nn::toy_mnist_like(21);
    let task = SyntheticTask::new(net.input_shape(), 4, 0.15, 5);
    let before = accuracy(&net, &task, 300, 1);
    let loss = train(&mut net, &task, &TrainConfig::default());
    let after = accuracy(&net, &task, 300, 1);
    println!("accuracy: {before:.1}% -> {after:.1}% (final loss {loss:.3})",
        before = before * 100.0, after = after * 100.0);

    // 2. Budget the noise before spending any compute.
    println!();
    println!("== 2. analytic noise budget (L = 7 toy parameters) ==");
    let params = CkksParams::insecure_toy(7);
    let ctx = CkksContext::new(params);
    let mut est = NoiseEstimate::fresh(&ctx);
    println!("fresh: {:.1} budget bits", est.budget_bits());
    for d in 1..=2 {
        est = square_step(&est, 2.0, &ctx).expect("depth 2 fits the L = 7 budget");
        println!("after square #{d}: {:.1} budget bits (level {})", est.budget_bits(), est.level);
    }

    // 3. Client side: keys + encrypted input over the wire.
    println!();
    println!("== 3. encrypt, serialize, ship ==");
    let prog = lower_network(&net, ctx.degree(), ctx.max_level());
    let mut kg = KeyGenerator::new(&ctx, StdRng::seed_from_u64(33));
    let pk = kg.public_key();
    let sk = kg.secret_key();
    let rk = kg.relin_key();
    let gks = kg.galois_keys(&prog.required_rotations());

    let mut rng = StdRng::seed_from_u64(77);
    let (image, label) = task.sample(&mut rng);
    let mut enc = Encryptor::new(&ctx, pk, StdRng::seed_from_u64(34));
    let input = encrypt_input(&net, &image, &mut enc, ctx.degree() / 2);
    let wire_bytes: usize = input
        .groups
        .iter()
        .flatten()
        .map(|ct| encode_ciphertext(ct).len())
        .sum();
    println!(
        "{} input ciphertexts, {:.1} KB on the wire (true label: class {label})",
        input.groups.iter().map(|g| g.len()).sum::<usize>(),
        wire_bytes as f64 / 1024.0
    );
    // Round-trip one ciphertext through the wire format.
    let sample = &input.groups[0][0];
    assert_eq!(
        decode_ciphertext(&encode_ciphertext(sample)).expect("wire format"),
        *sample
    );

    // 4. Server side: blind inference.
    println!();
    println!("== 4. encrypted inference ==");
    let mut exec = HeCnnExecutor::new(&ctx, &rk, &gks);
    exec.start_trace();
    let out = exec.run(&net, &input);
    let trace = exec.take_trace().expect("traced");
    println!(
        "executed {} HOPs ({} KeySwitches) — plan said {} HOPs",
        trace.hop_count(),
        trace.key_switch_count(),
        prog.hop_count()
    );

    // 5. Client decrypts.
    println!();
    println!("== 5. decrypt & verify ==");
    let dec = Decryptor::new(&ctx, sk);
    let logits = out.decrypt(&dec);
    let he_class = logits
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .expect("non-empty");
    let plain_class = net.forward(&image).argmax();
    println!("HE logits: {logits:.3?}");
    println!("HE class = {he_class}, plaintext class = {plain_class}, true = {label}");
    assert_eq!(he_class, plain_class, "encrypted inference must agree");
    println!("encrypted and plaintext inference agree ✔");
}

//! Exhaustive design space exploration (paper Sec. VI-B).
//!
//! The decision variables are, per HE operation module class: the NTT
//! core count `nc_NTT ∈ {2, 4, 8}`, the intra-operation parallelism
//! `P_intra ∈ 1..=L`, and the inter-operation parallelism
//! `P_inter ∈ 1..=4`. CCmult is pinned to the minimal configuration — as
//! the paper observes (Fig. 10), squaring is so rare in
//! ciphertext-input/plaintext-weight inference that parallelizing it
//! never pays. The objective minimizes the summed layer latencies
//! subject to the device's DSP capacity and (URAM-converted) BRAM budget
//! (Eq. 10).
//!
//! The space is a few tens of thousands of points and evaluates in
//! milliseconds — "negligible compared with the FPGA synthesis which
//! takes up to a few hours".

use crate::design::{DesignEval, DesignPoint, ProgramCost};
use crate::error::{BindingConstraint, DseError, InfeasibleDiagnosis, Relaxation};
use fxhenn_hw::{FpgaDevice, ModuleConfig, ModuleSet, OpClass};
use fxhenn_math::budget::{self, BudgetStop, Progress};
use fxhenn_nn::HeCnnProgram;
use std::ops::ControlFlow;

/// Points enumerated between ambient-budget checks. A point evaluation
/// is sub-microsecond, so this keeps check overhead invisible while
/// bounding the post-deadline overrun to well under a millisecond.
const BUDGET_CHECK_INTERVAL: u64 = 512;

/// The searchable configuration axes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchSpace {
    /// NTT core counts considered for Rescale and KeySwitch.
    pub nc_options: Vec<usize>,
    /// Intra-parallelism options for the NTT-bound classes.
    pub intra_options: Vec<usize>,
    /// Inter-parallelism options for the NTT-bound classes.
    pub inter_options: Vec<usize>,
    /// Parallelism options (intra, inter) for PCmult.
    pub pcmult_options: Vec<(usize, usize)>,
}

impl SearchSpace {
    /// The paper's design space for a program with `max_level` levels.
    pub fn paper_default(max_level: usize) -> Self {
        Self {
            nc_options: vec![2, 4, 8],
            intra_options: (1..=max_level).collect(),
            inter_options: vec![1, 2, 3, 4],
            pcmult_options: vec![(1, 1), (2, 1), (4, 1), (2, 2), (4, 2)],
        }
    }

    /// Number of candidate points this space enumerates.
    pub fn point_count(&self) -> usize {
        let ntt = self.nc_options.len() * self.intra_options.len() * self.inter_options.len();
        ntt * ntt * self.pcmult_options.len()
    }
}

/// One explored design point with its evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploredPoint {
    /// The configuration.
    pub point: DesignPoint,
    /// Its evaluation on the target device.
    pub eval: DesignEval,
}

/// The result of a DSE run.
#[derive(Debug, Clone, PartialEq)]
pub struct DseResult {
    /// The best feasible point (minimum latency), if any exists.
    pub best: Option<ExploredPoint>,
    /// Every feasible point explored (for Pareto analysis, Fig. 9).
    pub feasible: Vec<ExploredPoint>,
    /// Total points enumerated.
    pub points_enumerated: usize,
}

/// Calls `f` with every design point the space enumerates, stopping
/// early when `f` breaks.
fn visit_points(
    space: &SearchSpace,
    mut f: impl FnMut(DesignPoint) -> ControlFlow<BudgetStop>,
) -> Result<(), BudgetStop> {
    for &ks_nc in &space.nc_options {
        for &ks_intra in &space.intra_options {
            for &ks_inter in &space.inter_options {
                for &rs_nc in &space.nc_options {
                    for &rs_intra in &space.intra_options {
                        for &rs_inter in &space.inter_options {
                            for &(pm_intra, pm_inter) in &space.pcmult_options {
                                let mut modules = ModuleSet::minimal();
                                modules.set(
                                    OpClass::KeySwitch,
                                    ModuleConfig {
                                        nc_ntt: ks_nc,
                                        p_intra: ks_intra,
                                        p_inter: ks_inter,
                                    },
                                );
                                modules.set(
                                    OpClass::Rescale,
                                    ModuleConfig {
                                        nc_ntt: rs_nc,
                                        p_intra: rs_intra,
                                        p_inter: rs_inter,
                                    },
                                );
                                modules.set(
                                    OpClass::PcMult,
                                    ModuleConfig {
                                        nc_ntt: 2,
                                        p_intra: pm_intra,
                                        p_inter: pm_inter,
                                    },
                                );
                                if let ControlFlow::Break(stop) = f(DesignPoint { modules }) {
                                    return Err(stop);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Budget-aware enumeration: calls `f` with every point, checking the
/// ambient execution budget every [`BUDGET_CHECK_INTERVAL`] points and
/// stopping with the typed [`BudgetStop`] once it is exhausted.
fn try_for_each_point(
    space: &SearchSpace,
    mut f: impl FnMut(DesignPoint),
) -> Result<(), BudgetStop> {
    let total = space.point_count() as u64;
    let mut done = 0u64;
    visit_points(space, |point| {
        if done.is_multiple_of(BUDGET_CHECK_INTERVAL) {
            if let Err(stop) = budget::check("dse-explore", Progress::of(done, total)) {
                return ControlFlow::Break(stop);
            }
        }
        done += 1;
        f(point);
        ControlFlow::Continue(())
    })
}

/// Calls `f` with every design point the space enumerates. Open-loop:
/// runs to completion regardless of any ambient budget (the `try_`
/// entry points use [`try_for_each_point`] instead).
fn for_each_point(space: &SearchSpace, mut f: impl FnMut(DesignPoint)) {
    // A Continue-only visitor never breaks, so the Result is always Ok.
    let _ = visit_points(space, |point| {
        f(point);
        ControlFlow::Continue(())
    });
}

/// Exhaustively explores the space for a program on a device.
pub fn explore(
    prog: &HeCnnProgram,
    device: &FpgaDevice,
    w_bits: u32,
    space: &SearchSpace,
) -> DseResult {
    let mut best: Option<ExploredPoint> = None;
    let mut feasible = Vec::new();
    let mut enumerated = 0usize;
    let cost = ProgramCost::new(prog, w_bits);

    for_each_point(space, |point| {
        enumerated += 1;
        let eval = cost.evaluate(&point, device);
        // Eq. 10: both DSP and BRAM are hard constraints for DSE
        // candidates.
        if !eval.feasible || !eval.fully_buffered {
            return;
        }
        let explored = ExploredPoint { point, eval };
        if best
            .as_ref()
            .map(|b| explored.eval.latency_s < b.eval.latency_s)
            .unwrap_or(true)
        {
            best = Some(explored.clone());
        }
        feasible.push(explored);
    });

    // Fallback: when no configuration fits fully on-chip (the paper's
    // FxHENN-CIFAR10-on-ACU9EG case, Fig. 10c), build the minimal
    // accelerator and stream the overflow from DRAM with stalls — the
    // design degenerates to "minimum intra- and inter-parallelism".
    if best.is_none() {
        let point = DesignPoint::minimal();
        let eval = cost.evaluate(&point, device);
        if eval.feasible {
            best = Some(ExploredPoint { point, eval });
        }
    }

    DseResult {
        best,
        feasible,
        points_enumerated: enumerated,
    }
}

/// Rejects spaces that enumerate nothing.
fn validate_space(space: &SearchSpace) -> Result<(), DseError> {
    if space.nc_options.is_empty()
        || space.intra_options.is_empty()
        || space.inter_options.is_empty()
        || space.pcmult_options.is_empty()
    {
        return Err(DseError::EmptySearchSpace);
    }
    Ok(())
}

/// Like [`explore`], but reports "no design at all" as a structured
/// [`DseError::Infeasible`] instead of `best: None`, and honours the
/// ambient execution budget: a deadline or cancellation mid-sweep
/// returns [`DseError::Cancelled`] instead of reporting a partial sweep
/// as exhaustive. The DRAM-stall fallback of [`explore`] still applies,
/// so the binding constraint here is always DSP: BRAM shortfalls
/// degrade into stalls.
pub fn try_explore(
    prog: &HeCnnProgram,
    device: &FpgaDevice,
    w_bits: u32,
    space: &SearchSpace,
) -> Result<DseResult, DseError> {
    validate_space(space)?;
    let cost = ProgramCost::new(prog, w_bits);
    let mut best: Option<ExploredPoint> = None;
    let mut feasible = Vec::new();
    let mut enumerated = 0usize;

    try_for_each_point(space, |point| {
        enumerated += 1;
        let eval = cost.evaluate(&point, device);
        if !eval.feasible || !eval.fully_buffered {
            return;
        }
        let explored = ExploredPoint { point, eval };
        if best
            .as_ref()
            .map(|b| explored.eval.latency_s < b.eval.latency_s)
            .unwrap_or(true)
        {
            best = Some(explored.clone());
        }
        feasible.push(explored);
    })?;

    // DRAM-stall fallback, as in `explore`.
    if best.is_none() {
        let point = DesignPoint::minimal();
        let eval = cost.evaluate(&point, device);
        if eval.feasible {
            best = Some(ExploredPoint { point, eval });
        }
    }
    if best.is_some() {
        return Ok(DseResult {
            best,
            feasible,
            points_enumerated: enumerated,
        });
    }
    // Even DesignPoint::minimal() exceeded the DSP budget, so every
    // point did. Name the cheapest point's demand as the floor.
    let mut min_dsp = cost.evaluate(&DesignPoint::minimal(), device).dsp_used;
    try_for_each_point(space, |point| {
        min_dsp = min_dsp.min(cost.evaluate(&point, device).dsp_used);
    })?;
    let available = device.dsp_slices();
    let additional = min_dsp.saturating_sub(available);
    Err(DseError::Infeasible(InfeasibleDiagnosis {
        device: device.name().to_string(),
        binding: BindingConstraint::Dsp {
            required_min: min_dsp,
            available,
        },
        relaxation: (additional > 0).then_some(Relaxation::RaiseDsp { additional }),
    }))
}

/// Convenience: [`try_explore`] with the paper's default space.
pub fn try_explore_default(
    prog: &HeCnnProgram,
    device: &FpgaDevice,
    w_bits: u32,
) -> Result<DseResult, DseError> {
    try_explore(prog, device, w_bits, &SearchSpace::paper_default(prog.max_level))
}

/// Strict exploration: every admitted design must hold its working set
/// fully on-chip — the DRAM-stall fallback of [`explore`] is disabled,
/// so the BRAM budget (Eqs. 8–9) becomes a hard constraint alongside
/// DSP. When nothing fits, the returned [`InfeasibleDiagnosis`] names
/// which of the two bound the search and the nearest feasible
/// relaxation: the smallest resource increase (or `nc_NTT` downgrade
/// below the space's floor) that admits a design.
pub fn try_explore_fully_buffered(
    prog: &HeCnnProgram,
    device: &FpgaDevice,
    w_bits: u32,
    space: &SearchSpace,
) -> Result<DseResult, DseError> {
    validate_space(space)?;
    let cost = ProgramCost::new(prog, w_bits);
    let mut best: Option<ExploredPoint> = None;
    let mut feasible = Vec::new();
    let mut enumerated = 0usize;
    let mut min_dsp: Option<usize> = None;
    // Least BRAM shortfall among DSP-feasible points:
    // (deficit, peak demand, budget at that point).
    let mut shortfall: Option<(usize, usize, usize)> = None;

    try_for_each_point(space, |point| {
        enumerated += 1;
        let eval = cost.evaluate(&point, device);
        min_dsp = Some(min_dsp.map_or(eval.dsp_used, |m| m.min(eval.dsp_used)));
        if eval.feasible && !eval.fully_buffered {
            let budget = cost.bram_budget(&point, device);
            let deficit = eval.bram_peak.saturating_sub(budget);
            if shortfall.is_none_or(|(d, _, _)| deficit < d) {
                shortfall = Some((deficit, eval.bram_peak, budget));
            }
        }
        if !eval.feasible || !eval.fully_buffered {
            return;
        }
        let explored = ExploredPoint { point, eval };
        if best
            .as_ref()
            .map(|b| explored.eval.latency_s < b.eval.latency_s)
            .unwrap_or(true)
        {
            best = Some(explored.clone());
        }
        feasible.push(explored);
    })?;

    if best.is_some() {
        return Ok(DseResult {
            best,
            feasible,
            points_enumerated: enumerated,
        });
    }
    Err(DseError::Infeasible(diagnose(
        &cost, device, space, min_dsp, shortfall,
    )))
}

/// Builds the structured diagnosis for a strict search that admitted
/// nothing.
fn diagnose(
    cost: &ProgramCost,
    device: &FpgaDevice,
    space: &SearchSpace,
    min_dsp: Option<usize>,
    shortfall: Option<(usize, usize, usize)>,
) -> InfeasibleDiagnosis {
    match shortfall {
        // No point even passed the DSP constraint.
        None => {
            let required_min = min_dsp.unwrap_or(0);
            let available = device.dsp_slices();
            let additional = required_min.saturating_sub(available);
            InfeasibleDiagnosis {
                device: device.name().to_string(),
                binding: BindingConstraint::Dsp {
                    required_min,
                    available,
                },
                relaxation: (additional > 0).then_some(Relaxation::RaiseDsp { additional }),
            }
        }
        // DSP-feasible points exist, but all of them overflow BRAM.
        Some((deficit, peak, budget)) => InfeasibleDiagnosis {
            device: device.name().to_string(),
            binding: BindingConstraint::Bram {
                required_min_blocks: peak,
                budget_blocks: budget,
            },
            relaxation: Some(ntt_downgrade(cost, device, space).unwrap_or(
                Relaxation::RaiseBramBudget {
                    additional_blocks: deficit,
                },
            )),
        },
    }
}

/// Checks whether dropping `nc_NTT` below the space's floor shrinks the
/// banked Bn buffers enough to fit on-chip (banking doubles the block
/// count at `nc_NTT = 8`, Sec. VI-A). Returns the largest such
/// downgrade, preferring the smallest change to the space.
fn ntt_downgrade(
    cost: &ProgramCost,
    device: &FpgaDevice,
    space: &SearchSpace,
) -> Option<Relaxation> {
    let floor = space.nc_options.iter().copied().min()?;
    for to in [4usize, 2] {
        if to >= floor {
            continue;
        }
        let cfg = ModuleConfig {
            nc_ntt: to,
            p_intra: 1,
            p_inter: 1,
        };
        let mut modules = ModuleSet::minimal();
        modules.set(OpClass::KeySwitch, cfg);
        modules.set(OpClass::Rescale, cfg);
        let eval = cost.evaluate(&DesignPoint { modules }, device);
        if eval.feasible && eval.fully_buffered {
            return Some(Relaxation::DowngradeNtt { to });
        }
    }
    None
}

/// Convenience: explores with the paper's default space.
pub fn explore_default(prog: &HeCnnProgram, device: &FpgaDevice, w_bits: u32) -> DseResult {
    explore(prog, device, w_bits, &SearchSpace::paper_default(prog.max_level))
}

/// Explores under an artificial BRAM block cap (for the Fig. 9 budget
/// sweep): the device's BRAM is replaced by `bram_cap` blocks and URAM
/// is removed.
pub fn explore_with_bram_cap(
    prog: &HeCnnProgram,
    device: &FpgaDevice,
    w_bits: u32,
    bram_cap: usize,
) -> DseResult {
    let capped = capped_device(device, bram_cap).expect("BRAM cap");
    explore_default(prog, &capped, w_bits)
}

/// Strict (fully-buffered) exploration under an artificial BRAM block
/// cap: the sweep of Fig. 9 continued below the feasibility floor,
/// where the explorer reports *why* the budget no longer admits a
/// design instead of silently degrading to DRAM stalls.
pub fn try_explore_fully_buffered_with_bram_cap(
    prog: &HeCnnProgram,
    device: &FpgaDevice,
    w_bits: u32,
    bram_cap: usize,
) -> Result<DseResult, DseError> {
    let capped = capped_device(device, bram_cap).map_err(DseError::Device)?;
    try_explore_fully_buffered(
        prog,
        &capped,
        w_bits,
        &SearchSpace::paper_default(prog.max_level),
    )
}

/// Replaces the device's BRAM with `bram_cap` blocks and strips URAM.
fn capped_device(
    device: &FpgaDevice,
    bram_cap: usize,
) -> Result<FpgaDevice, fxhenn_hw::ModelError> {
    FpgaDevice::try_new(
        format!("{}-cap{}", device.name(), bram_cap),
        device.dsp_slices(),
        bram_cap,
        0,
        device.clock_mhz(),
        device.tdp_watts(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxhenn_nn::{fxhenn_mnist, lower_network};

    fn mnist() -> HeCnnProgram {
        lower_network(&fxhenn_mnist(1), 8192, 7)
    }

    #[test]
    fn dse_finds_a_feasible_optimum_on_acu9eg() {
        let prog = mnist();
        let res = explore_default(&prog, &FpgaDevice::acu9eg(), 30);
        let best = res.best.expect("ACU9EG admits feasible designs");
        assert!(best.eval.feasible);
        // Paper Table VII: FxHENN-MNIST on ACU9EG runs in 0.24 s.
        assert!(
            (0.1..=0.5).contains(&best.eval.latency_s),
            "optimized MNIST latency = {:.3} s (paper 0.24 s)",
            best.eval.latency_s
        );
        assert!(res.points_enumerated > 1000, "space is non-trivial");
    }

    #[test]
    fn optimum_beats_minimal_point_substantially() {
        let prog = mnist();
        let device = FpgaDevice::acu9eg();
        let minimal = crate::design::evaluate(&prog, &DesignPoint::minimal(), &device, 30);
        let best = explore_default(&prog, &device, 30).best.unwrap();
        let speedup = minimal.latency_s / best.eval.latency_s;
        // Table IX: FxHENN (0.24 s) vs baseline (1.17 s) is ~4.9x.
        assert!(
            speedup > 3.0,
            "DSE speedup over minimal = {speedup:.2}x (paper ~4.9x)"
        );
    }

    #[test]
    fn bigger_device_is_at_least_as_fast() {
        let prog = mnist();
        let a9 = explore_default(&prog, &FpgaDevice::acu9eg(), 30)
            .best
            .unwrap();
        let a15 = explore_default(&prog, &FpgaDevice::acu15eg(), 30)
            .best
            .unwrap();
        assert!(
            a15.eval.latency_s <= a9.eval.latency_s * 1.01,
            "ACU15EG ({:.3}s) should not lose to ACU9EG ({:.3}s)",
            a15.eval.latency_s,
            a9.eval.latency_s
        );
    }

    #[test]
    fn tight_bram_cap_restricts_and_slows_designs() {
        let prog = mnist();
        let device = FpgaDevice::acu9eg();
        // Our buffer calibration floors the smallest feasible design just
        // below ~500 blocks (the paper's Fig. 9 sweep starts at 350).
        let tight = explore_with_bram_cap(&prog, &device, 30, 520);
        let loose = explore_with_bram_cap(&prog, &device, 30, 1500);
        let buffered = |r: &DseResult| r.feasible.iter().filter(|p| p.eval.fully_buffered).count();
        assert!(
            buffered(&tight) < buffered(&loose),
            "fewer designs fit a tight budget fully on-chip (Fig. 9 observation)"
        );
        let t = tight.best.expect("520 blocks still admits a design");
        let l = loose.best.unwrap();
        assert!(
            l.eval.latency_s <= t.eval.latency_s,
            "more BRAM can only help: {:.3}s vs {:.3}s",
            l.eval.latency_s,
            t.eval.latency_s
        );
    }

    #[test]
    fn space_counts_match_enumeration() {
        let prog = mnist();
        let space = SearchSpace {
            nc_options: vec![2, 4],
            intra_options: vec![1, 2],
            inter_options: vec![1],
            pcmult_options: vec![(1, 1)],
        };
        let res = explore(&prog, &FpgaDevice::acu9eg(), 30, &space);
        assert_eq!(res.points_enumerated, space.point_count());
        assert_eq!(res.points_enumerated, 16);
    }

    #[test]
    fn empty_space_is_reported() {
        let prog = mnist();
        let space = SearchSpace {
            nc_options: vec![],
            intra_options: vec![1],
            inter_options: vec![1],
            pcmult_options: vec![(1, 1)],
        };
        let err = try_explore(&prog, &FpgaDevice::acu9eg(), 30, &space).unwrap_err();
        assert_eq!(err, DseError::EmptySearchSpace);
    }

    #[test]
    fn strict_explorer_matches_default_when_everything_fits() {
        let prog = mnist();
        let device = FpgaDevice::acu9eg();
        let space = SearchSpace::paper_default(prog.max_level);
        let strict = try_explore_fully_buffered(&prog, &device, 30, &space)
            .expect("ACU9EG fits fully on-chip");
        let lax = explore(&prog, &device, 30, &space);
        assert_eq!(
            strict.best.unwrap().eval.latency_s,
            lax.best.unwrap().eval.latency_s,
            "with no overflow the stall fallback never engages"
        );
    }

    /// The MNIST program with one extra layer carrying the composite
    /// sign and ct×ct matmul workloads, as a lowered program with both
    /// new op kinds would.
    fn mnist_with_composites() -> HeCnnProgram {
        use fxhenn_ckks::{HeOpKind, OpTrace};
        use fxhenn_nn::{HeLayerClass, HeLayerPlan};
        let mut prog = mnist();
        let mut trace = OpTrace::new();
        trace.record(HeOpKind::Sign, 7);
        trace.record(HeOpKind::Sign, 4);
        trace.record(HeOpKind::CtMatmul, 7);
        prog.layers.push(HeLayerPlan {
            name: "SgnMm".to_string(),
            class: HeLayerClass::Ks,
            trace,
            input_cts: 1,
            output_cts: 1,
            level_in: 7,
            level_out: 1,
            plaintext_words: 0,
            rotation_steps: Vec::new(),
        });
        prog
    }

    #[test]
    fn composite_workloads_explore_feasibly_and_cost_extra() {
        // A program whose traces contain Sign and CtMatmul records must
        // still find a feasible design on ACU9EG — the composite module
        // DSP is provisioned on top of every point — and that design is
        // slower than the plain program's, never faster.
        let device = FpgaDevice::acu9eg();
        let plain = explore_default(&mnist(), &device, 30).best.unwrap();
        let res = explore_default(&mnist_with_composites(), &device, 30);
        let best = res.best.expect("ACU9EG still admits the composite program");
        assert!(best.eval.feasible);
        assert!(
            best.eval.latency_s >= plain.eval.latency_s,
            "composite ops add latency: {:.3}s vs {:.3}s",
            best.eval.latency_s,
            plain.eval.latency_s
        );
    }

    #[test]
    fn composite_workloads_name_binding_constraint_when_infeasible() {
        // On a device too small even for the provisioned composites the
        // failure is a diagnosis naming the binding resource, exactly as
        // for the plain program.
        let prog = mnist_with_composites();
        let tiny = FpgaDevice::new("tiny", 128, 912, 0, 250.0, 5.0);
        let err = try_explore_default(&prog, &tiny, 30).unwrap_err();
        let diag = err.diagnosis().expect("infeasible, not empty");
        assert_eq!(diag.device, "tiny");
        assert!(
            matches!(diag.binding, BindingConstraint::Dsp { .. }),
            "expected a DSP diagnosis, got {:?}",
            diag.binding
        );
        // The composite provisioning raises the DSP floor above the
        // plain program's.
        let plain_err = try_explore_default(&mnist(), &tiny, 30).unwrap_err();
        let plain_diag = plain_err.diagnosis().expect("plain also infeasible");
        let floor = |d: &InfeasibleDiagnosis| match d.binding {
            BindingConstraint::Dsp { required_min, .. } => required_min,
            _ => panic!("DSP binding expected"),
        };
        assert!(
            floor(diag) > floor(plain_diag),
            "composites must raise the DSP floor: {} vs {}",
            floor(diag),
            floor(plain_diag)
        );
    }

    #[test]
    fn dsp_infeasibility_names_binding_constraint_and_minimal_fix() {
        let prog = mnist();
        // 128 DSP slices cannot host even the minimal module set.
        let tiny = FpgaDevice::new("tiny", 128, 912, 0, 250.0, 5.0);
        let err = try_explore_default(&prog, &tiny, 30).unwrap_err();
        let diag = err.diagnosis().expect("infeasible, not empty");
        assert_eq!(diag.device, "tiny");
        let (required_min, additional) = match (&diag.binding, &diag.relaxation) {
            (
                BindingConstraint::Dsp {
                    required_min,
                    available: 128,
                },
                Some(Relaxation::RaiseDsp { additional }),
            ) => (*required_min, *additional),
            other => panic!("expected a DSP diagnosis, got {other:?}"),
        };
        assert_eq!(required_min, 128 + additional);
        // The relaxation is exact: that many extra slices admit a
        // design, one fewer does not.
        let fixed = FpgaDevice::new("tiny+", 128 + additional, 912, 0, 250.0, 5.0);
        assert!(try_explore_default(&prog, &fixed, 30).is_ok());
        let short = FpgaDevice::new("tiny-", 128 + additional - 1, 912, 0, 250.0, 5.0);
        assert!(try_explore_default(&prog, &short, 30).is_err());
    }

    #[test]
    fn bram_caps_below_feasibility_floor_yield_exact_diagnosis() {
        // Fig. 9 sweep continued below the ~500-block floor: every cap
        // under the smallest fully-buffered design must produce a BRAM
        // diagnosis whose relaxation is the exact distance back to
        // feasibility.
        let prog = mnist();
        let device = FpgaDevice::acu9eg();
        for cap in [350usize, 400, 450] {
            let err = try_explore_fully_buffered_with_bram_cap(&prog, &device, 30, cap)
                .expect_err("cap below the feasibility floor");
            let diag = err.diagnosis().expect("infeasible, not empty");
            let (need, budget, add) = match (&diag.binding, &diag.relaxation) {
                (
                    BindingConstraint::Bram {
                        required_min_blocks,
                        budget_blocks,
                    },
                    Some(Relaxation::RaiseBramBudget { additional_blocks }),
                ) => (*required_min_blocks, *budget_blocks, *additional_blocks),
                other => panic!("cap {cap}: expected a BRAM diagnosis, got {other:?}"),
            };
            assert_eq!(budget, cap, "no URAM, so the budget is the cap itself");
            assert_eq!(need, cap + add, "relaxation closes exactly the deficit");
            assert!(
                try_explore_fully_buffered_with_bram_cap(&prog, &device, 30, cap + add).is_ok(),
                "cap {cap}: raising the budget by {add} blocks must admit a design"
            );
        }
    }

    #[test]
    fn banking_bound_space_suggests_ntt_downgrade() {
        // With nc_NTT pinned to 8 the Bn banks double (Sec. VI-A), so a
        // budget that comfortably fits nc = 2 designs admits nothing;
        // the nearest relaxation is the core-count downgrade, not more
        // memory.
        let prog = mnist();
        let space = SearchSpace {
            nc_options: vec![8],
            intra_options: vec![1],
            inter_options: vec![1],
            pcmult_options: vec![(1, 1)],
        };
        let capped = FpgaDevice::new("ACU9EG-cap520", 2520, 520, 0, 250.0, 10.0);
        let err = try_explore_fully_buffered(&prog, &capped, 30, &space)
            .expect_err("520 blocks cannot hold doubled banks");
        let diag = err.diagnosis().expect("infeasible, not empty");
        assert!(matches!(diag.binding, BindingConstraint::Bram { .. }));
        assert!(
            matches!(diag.relaxation, Some(Relaxation::DowngradeNtt { to }) if to < 8),
            "expected an nc_NTT downgrade, got {:?}",
            diag.relaxation
        );
    }

    #[test]
    fn zero_bram_cap_is_a_device_error_not_a_panic() {
        let prog = mnist();
        let err = try_explore_fully_buffered_with_bram_cap(&prog, &FpgaDevice::acu9eg(), 30, 0)
            .unwrap_err();
        assert!(matches!(err, DseError::Device(_)), "{err}");
    }

    #[test]
    fn expired_budget_cancels_exploration_with_progress() {
        use fxhenn_math::budget::Budget;
        let prog = mnist();
        let b = Budget::with_deadline(std::time::Duration::ZERO);
        let err = budget::with_budget(&b, || {
            try_explore_default(&prog, &FpgaDevice::acu9eg(), 30)
        })
        .unwrap_err();
        match err {
            DseError::Cancelled(stop) => {
                assert_eq!(stop.phase, "dse-explore");
                assert!(stop.progress.total.is_some(), "space size is known up front");
            }
            other => panic!("expected cancellation, got {other}"),
        }
        // Without an ambient budget the same search completes.
        assert!(try_explore_default(&prog, &FpgaDevice::acu9eg(), 30).is_ok());
    }

    #[test]
    fn ccmult_stays_minimal_in_best_designs() {
        // Fig. 10: CCmult parallelism is 1 in every generated design.
        let prog = mnist();
        let best = explore_default(&prog, &FpgaDevice::acu9eg(), 30)
            .best
            .unwrap();
        assert_eq!(
            best.point.modules.get(OpClass::CcMult),
            ModuleConfig::minimal()
        );
    }
}

//! # fxhenn-math
//!
//! Number-theoretic substrate for the FxHENN reproduction: word-sized
//! modular arithmetic (including the Barrett-reduction and Shoup
//! multiplication primitives an FPGA datapath would instantiate),
//! NTT-friendly prime generation, the negacyclic number-theoretic
//! transform, residue-number-system bases with CRT reconstruction, RNS
//! polynomials and the random samplers used by RNS-CKKS key generation.
//!
//! The paper lowers every HE operation onto exactly these basic
//! operations — "NTT/INTT, Barrett Reduction, Modular Multiplication,
//! Modular Subtraction, and Modular Addition" (Sec. II-A) — so this crate
//! is the software mirror of the accelerator's basic operation modules.
//!
//! ## Example
//!
//! Multiply two polynomials in `Z_q[X]/(X^N + 1)` via the NTT:
//!
//! ```
//! use fxhenn_math::ntt::NttTable;
//! use fxhenn_math::prime::generate_ntt_primes;
//! use fxhenn_math::modops::mul_mod;
//!
//! let n = 64;
//! let q = generate_ntt_primes(30, n, 1)[0];
//! let table = NttTable::new(n, q);
//!
//! let mut a = vec![0u64; n];
//! let mut b = vec![0u64; n];
//! a[1] = 2; // 2X
//! b[2] = 3; // 3X^2
//! table.forward(&mut a);
//! table.forward(&mut b);
//! let mut c: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| mul_mod(x, y, q)).collect();
//! table.inverse(&mut c);
//! assert_eq!(c[3], 6); // 6X^3
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod bigint;
pub mod budget;
pub mod error;
pub mod modops;
pub mod ntt;
pub mod par;
pub mod poly;
pub mod prime;
pub mod rns;
pub mod sampling;

pub use bigint::BigUint;
pub use budget::{Budget, BudgetStop, CancelToken, Progress, StopCause};
pub use error::MathError;
pub use ntt::NttTable;
pub use poly::{mul_pointwise_of, BorrowedRnsPoly, Domain, PolyLimbs, RnsPoly};
pub use rns::RnsBasis;

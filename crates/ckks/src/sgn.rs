//! Encrypted sign evaluation by composite minimax polynomials, and the
//! comparison workloads built on it: `relu_approx`, `max_pool2`, and
//! `encrypted_argmax`.
//!
//! CKKS has no native comparison, so `sgn(x)` is approximated by a
//! composition of low-degree odd polynomials in the style of Cheon,
//! Kim and Kim's f/g minimax iteration: each stage is the cubic
//! `x · (a + b·x²)`, where the *g* stage `g(x) ≈ x(2.0762 − 1.3271·x²)`
//! compresses the valid input band toward ±1 and the *f* stage
//! `f(x) = x(1.5 − 0.5·x²)` converges values near ±1 onto ±1.  Deeper
//! compositions buy accuracy with levels: each stage consumes exactly
//! three (square, coefficient fold, closing product — all rescaled).
//!
//! The evaluator books each stage as a single [`HeOpKind::Sign`] macro
//! record at its entry level (via `record_macro`): traces and span logs
//! describe workload structure in the same units the analytic lowering
//! and the hardware cost model use, while the always-on global
//! telemetry still counts every constituent primitive.
//!
//! All inputs must carry values in `[-bound, bound]`; the bound folds
//! into the first stage's coefficients for free (`x → x/c` rewrites
//! `x(a + b·x²)` as `x(a/c + (b/c³)·x²)`), so normalisation costs no
//! extra level.
//!
//! Every entry point demands **two guard levels** beyond its
//! multiplicative depth: with the encoding scale `Δ ≈ q` (one prime per
//! level), a `Δ²`-scale intermediate only has modulus headroom at
//! level ≥ 3, so the deepest product of each circuit must not land
//! below that — admission rejects shallower inputs with
//! [`EvalError::LevelExhausted`] instead of silently wrapping.

use crate::cipher::Ciphertext;
use crate::error::EvalError;
use crate::eval::Evaluator;
use crate::keys::RelinKey;
use crate::trace::HeOpKind;

/// The convergence stage `f(x) = x·(1.5 − 0.5·x²)`: fixes ±1, pulls
/// everything in `(0, 1]` monotonically toward 1.
const STAGE_F: (f64, f64) = (1.5, -0.5);

/// The band-compression stage `g(x) ≈ x·(2.0762 − 1.3271·x²)` (the
/// degree-3 minimax pair of `f` from the composite-iteration
/// construction): maps `[δ, 1]` much closer to 1 than `f` does, at the
/// cost of not being a contraction near 0.
const STAGE_G: (f64, f64) = (2126.0 / 1024.0, -1359.0 / 1024.0);

/// Precision presets for the sign composition, trading multiplicative
/// depth (three levels per stage) for approximation error.
///
/// The error bounds are measured over `input_floor ≤ |x| ≤ 1` — like
/// every polynomial sign approximation, the composition is unreliable
/// inside the dead band `|x| < input_floor`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SignPreset {
    /// `f ∘ g` — 2 stages, 6 levels, max error ≤ 0.20 for |x| ≥ 0.35.
    Low,
    /// `f ∘ f ∘ g` — 3 stages, 9 levels, max error ≤ 0.06 for |x| ≥ 0.35.
    Medium,
    /// `f ∘ f ∘ g ∘ g` — 4 stages, 12 levels, max error ≤ 0.02 for
    /// |x| ≥ 0.20.
    High,
}

impl SignPreset {
    /// All presets, in increasing composition degree.
    pub const ALL: [SignPreset; 3] = [SignPreset::Low, SignPreset::Medium, SignPreset::High];

    /// The stage coefficients `(a, b)` applied innermost-first: each
    /// stage evaluates `x · (a + b·x²)`.
    pub fn stages(self) -> &'static [(f64, f64)] {
        match self {
            SignPreset::Low => &[STAGE_G, STAGE_F],
            SignPreset::Medium => &[STAGE_G, STAGE_F, STAGE_F],
            SignPreset::High => &[STAGE_G, STAGE_G, STAGE_F, STAGE_F],
        }
    }

    /// Multiplicative depth of the composition: three levels per stage.
    pub fn depth(self) -> usize {
        3 * self.stages().len()
    }

    /// Smallest |x|/bound for which the preset's error bound holds.
    pub fn input_floor(self) -> f64 {
        match self {
            SignPreset::Low | SignPreset::Medium => 0.35,
            SignPreset::High => 0.20,
        }
    }

    /// Guaranteed max |sgn(x) − p(x)| over `input_floor ≤ |x|/bound ≤ 1`
    /// (verified by the accuracy property tests).
    pub fn error_bound(self) -> f64 {
        match self {
            SignPreset::Low => 0.20,
            SignPreset::Medium => 0.06,
            SignPreset::High => 0.02,
        }
    }
}

/// Plaintext reference of the composite sign polynomial on `x/bound`.
/// This is the function the encrypted path computes (up to HE noise),
/// and what the property tests compare presets against.
pub fn sign_reference_with_bound(x: f64, preset: SignPreset, bound: f64) -> f64 {
    let mut y = x / bound;
    for &(a, b) in preset.stages() {
        y *= a + b * y * y;
    }
    y
}

/// Plaintext reference of the composite sign polynomial on `[-1, 1]`.
pub fn sign_reference(x: f64, preset: SignPreset) -> f64 {
    sign_reference_with_bound(x, preset, 1.0)
}

/// Multiplicative depth of [`relu_approx`]: the sign composition plus
/// the selector halving and the closing product.
pub fn relu_depth(preset: SignPreset) -> usize {
    preset.depth() + 2
}

/// Multiplicative depth of [`max_pool2`]: the sign composition plus the
/// halved-difference product (the aligned average rides in parallel).
pub fn max_pool2_depth(preset: SignPreset) -> usize {
    preset.depth() + 1
}

/// Multiplicative depth of [`encrypted_argmax`] over `count` entries:
/// `⌈log₂ count⌉` tournament rounds, each a sign composition plus
/// selector and blend products.
pub fn argmax_depth(count: usize, preset: SignPreset) -> usize {
    let mut remaining = count.max(1);
    let mut rounds = 0usize;
    while remaining > 1 {
        remaining = remaining.div_ceil(2);
        rounds += 1;
    }
    rounds * (preset.depth() + 2)
}

/// One composition stage `y = x · (a + b·x²)` at the ciphertext's
/// scale, consuming exactly three levels:
///
/// 1. `s = rescale(relin(x²))` — one level;
/// 2. `w = rescale(b ⊙ s) + a` — one level, coefficients folded at the
///    exact scales that keep `w` on the working scale;
/// 3. `y = rescale(relin(mod_switch(x) · w))` — one level.
fn sign_stage(
    ev: &mut Evaluator<'_>,
    x: &Ciphertext,
    rk: &RelinKey,
    a: f64,
    b: f64,
) -> Result<Ciphertext, EvalError> {
    let sq = ev.square(x)?;
    let sq = ev.relinearize(&sq, rk)?;
    let s = ev.rescale(&sq)?;
    let w = ev.mul_scalar(&s, b)?;
    let w = ev.rescale(&w)?;
    let w = ev.add_scalar(&w, a)?;
    let xd = ev.mod_switch_to(x, w.level())?;
    let y = ev.mul(&xd, &w)?;
    let y = ev.relinearize(&y, rk)?;
    ev.rescale(&y)
}

/// Approximates `sgn(x)` for slot values in `[-bound, bound]`,
/// consuming [`SignPreset::depth`] levels.  Output slots hold values in
/// `[-1, 1]`, within [`SignPreset::error_bound`] of the true sign
/// wherever `|x| ≥ input_floor · bound`.
///
/// # Errors
///
/// Fails with [`EvalError::LevelExhausted`] when the ciphertext does
/// not carry enough levels for the composition, with
/// [`EvalError::NonFiniteValue`] for a non-positive or non-finite
/// bound, and as the constituent evaluator ops do.
pub fn sign_with_bound(
    ev: &mut Evaluator<'_>,
    x: &Ciphertext,
    rk: &RelinKey,
    preset: SignPreset,
    bound: f64,
) -> Result<Ciphertext, EvalError> {
    if !(bound.is_finite() && bound > 0.0) {
        return Err(EvalError::NonFiniteValue { index: 0 });
    }
    let need = preset.depth() + 2;
    if x.level() < need {
        return Err(EvalError::LevelExhausted {
            have: x.level(),
            need,
        });
    }
    let mut cur = x.clone();
    for (i, &(a, b)) in preset.stages().iter().enumerate() {
        // Fold the input bound into the innermost stage:
        // (x/c)(a + b(x/c)²) = x(a/c + (b/c³)x²).
        let (a, b) = if i == 0 {
            (a / bound, b / (bound * bound * bound))
        } else {
            (a, b)
        };
        let entry = cur.level();
        let next = ev.record_macro(HeOpKind::Sign, entry, |ev| sign_stage(ev, &cur, rk, a, b))?;
        // Every stage maps the valid band into [-1, 1] (a property the
        // reference tests pin down), so the interval-arithmetic message
        // bound the generic ops track — which squares per stage and
        // would explode the noise admission across compositions — is
        // tightened back to the mathematical bound.
        let std = next.noise_std();
        let tight = next.msg_bound().min(1.0);
        cur = next.with_noise(std, tight);
    }
    Ok(cur)
}

/// [`sign_with_bound`] for inputs already normalised to `[-1, 1]`.
///
/// # Errors
///
/// Fails as [`sign_with_bound`] does.
pub fn sign(
    ev: &mut Evaluator<'_>,
    x: &Ciphertext,
    rk: &RelinKey,
    preset: SignPreset,
) -> Result<Ciphertext, EvalError> {
    sign_with_bound(ev, x, rk, preset, 1.0)
}

/// Brings `ct` to exactly (`target_level`, `target_scale`), multiplying
/// slot values by `factor` on the way: a plaintext product by `factor`
/// encoded at the scale that makes the following rescale land on the
/// target, costing one level above the target.
///
/// This is the glue that lets ciphertexts from different circuit depths
/// (whose scales have drifted apart by ratios of dropped primes) be
/// added together again.
///
/// # Errors
///
/// Fails if `ct` sits below `target_level + 1`, or as `mod_switch_to`,
/// `encode_at`, `mul_plain` and `rescale` do.
pub fn align_scale(
    ev: &mut Evaluator<'_>,
    ct: &Ciphertext,
    target_level: usize,
    target_scale: f64,
    factor: f64,
) -> Result<Ciphertext, EvalError> {
    let x = ev.mod_switch_to(ct, target_level + 1)?;
    let q = ev.context().dropped_prime_at(x.level()) as f64;
    let pt_scale = target_scale * q / x.scale();
    let slots = ev.context().degree() / 2;
    let pt = ev.encode_at(&vec![factor; slots], pt_scale, x.level())?;
    let y = ev.mul_plain(&x, &pt)?;
    ev.rescale(&y)
}

/// Approximate ReLU: `x · (1 + sgn(x)) / 2`, consuming
/// [`relu_depth`] levels.  Accurate to `bound · error_bound / 2`
/// outside the sign dead band; inside it the output is bounded by the
/// band itself.
///
/// # Errors
///
/// Fails as [`sign_with_bound`] and the constituent ops do.
pub fn relu_approx(
    ev: &mut Evaluator<'_>,
    x: &Ciphertext,
    rk: &RelinKey,
    preset: SignPreset,
    bound: f64,
) -> Result<Ciphertext, EvalError> {
    let need = relu_depth(preset) + 2;
    if x.level() < need {
        return Err(EvalError::LevelExhausted {
            have: x.level(),
            need,
        });
    }
    let s = sign_with_bound(ev, x, rk, preset, bound)?;
    let h = ev.mul_scalar(&s, 0.5)?;
    let h = ev.rescale(&h)?;
    let h = ev.add_scalar(&h, 0.5)?;
    let xd = ev.mod_switch_to(x, h.level())?;
    let y = ev.mul(&xd, &h)?;
    let y = ev.relinearize(&y, rk)?;
    let y = ev.rescale(&y)?;
    // |x · (1 + s)/2| ≤ |x| ≤ bound.
    let std = y.noise_std();
    let tight = y.msg_bound().min(bound);
    Ok(y.with_noise(std, tight))
}

/// Encrypted pairwise max: `(a + b)/2 + ((a − b)/2) · sgn(a − b)`,
/// consuming [`max_pool2_depth`] levels.  Both inputs must share level
/// and scale and carry values in `[-bound, bound]`.
///
/// # Errors
///
/// Fails as [`sign_with_bound`], [`align_scale`] and the constituent
/// ops do.
pub fn max_pool2(
    ev: &mut Evaluator<'_>,
    a: &Ciphertext,
    b: &Ciphertext,
    rk: &RelinKey,
    preset: SignPreset,
    bound: f64,
) -> Result<Ciphertext, EvalError> {
    let need = max_pool2_depth(preset) + 2;
    if a.level() < need || b.level() < need {
        return Err(EvalError::LevelExhausted {
            have: a.level().min(b.level()),
            need,
        });
    }
    let diff = ev.sub(a, b)?;
    let sum = ev.add(a, b)?;
    // sgn(d/2) = sgn(d): the difference bound 2·bound folds into the
    // composition for free.
    let s = sign_with_bound(ev, &diff, rk, preset, 2.0 * bound)?;
    // (a − b)/2 brought next to the sign output, then the product.
    let dh = ev.mul_scalar(&diff, 0.5)?;
    let dh = ev.rescale(&dh)?;
    let dh = ev.mod_switch_to(&dh, s.level())?;
    let p = ev.mul(&dh, &s)?;
    let p = ev.relinearize(&p, rk)?;
    let p = ev.rescale(&p)?;
    // (a + b)/2 aligned to the product's exact level and scale.
    let half_sum = align_scale(ev, &sum, p.level(), p.scale(), 0.5)?;
    let out = ev.add(&p, &half_sum)?;
    // max(a, b) stays inside the input band.
    let std = out.noise_std();
    let tight = out.msg_bound().min(bound);
    Ok(out.with_noise(std, tight))
}

/// A tournament entry: an encrypted score and an encrypted class index
/// that travels with it through [`encrypted_argmax`], so the winning
/// index never exists in plaintext on the server.
#[derive(Clone)]
pub struct ScoredClass {
    /// Encrypted classification score, values in `[-bound, bound]`.
    pub score: Ciphertext,
    /// Encrypted class index (any real value; typically `0..k`).
    pub index: Ciphertext,
}

/// One tournament round between two entries: the selector
/// `sel = (1 + sgn(a.score − b.score)) / 2` blends both the scores and
/// the indices, so the winner's pair advances under encryption.
fn argmax_round(
    ev: &mut Evaluator<'_>,
    a: &ScoredClass,
    b: &ScoredClass,
    rk: &RelinKey,
    preset: SignPreset,
    bound: f64,
) -> Result<ScoredClass, EvalError> {
    let d = ev.sub(&a.score, &b.score)?;
    let di = ev.sub(&a.index, &b.index)?;
    let s = sign_with_bound(ev, &d, rk, preset, 2.0 * bound)?;
    let sel = ev.mul_scalar(&s, 0.5)?;
    let sel = ev.rescale(&sel)?;
    let sel = ev.add_scalar(&sel, 0.5)?;
    let blend = |ev: &mut Evaluator<'_>, delta: &Ciphertext, base: &Ciphertext, sel: &Ciphertext|
     -> Result<Ciphertext, EvalError> {
        let dl = ev.mod_switch_to(delta, sel.level())?;
        let p = ev.mul(&dl, sel)?;
        let p = ev.relinearize(&p, rk)?;
        let p = ev.rescale(&p)?;
        let base = align_scale(ev, base, p.level(), p.scale(), 1.0)?;
        ev.add(&p, &base)
    };
    let score = blend(ev, &d, &b.score, &sel)?;
    // The blended winner score interpolates between the two input
    // scores, so it stays inside the score band.
    let std = score.noise_std();
    let tight = score.msg_bound().min(bound);
    let score = score.with_noise(std, tight);
    let index = blend(ev, &di, &b.index, &sel)?;
    Ok(ScoredClass { score, index })
}

/// Encrypted argmax over scored classes by tournament reduction:
/// `⌈log₂ k⌉` rounds of pairwise [`max_pool2`]-style selection carrying
/// the class indices along, consuming [`argmax_depth`] levels.  The
/// returned `index` ciphertext decrypts (client-side) to the winning
/// class index; the server never sees a plaintext comparison result.
///
/// All entries must share level and scale; scores must lie in
/// `[-bound, bound]` and be separated by at least the sign dead band
/// (`2 · bound · input_floor`) for the selection to be reliable.
///
/// # Errors
///
/// Fails as [`sign_with_bound`], [`align_scale`] and the constituent
/// ops do.
///
/// # Panics
///
/// Panics if `classes` is empty.
pub fn encrypted_argmax(
    ev: &mut Evaluator<'_>,
    classes: &[ScoredClass],
    rk: &RelinKey,
    preset: SignPreset,
    bound: f64,
) -> Result<ScoredClass, EvalError> {
    assert!(!classes.is_empty(), "argmax over an empty class list");
    let need = argmax_depth(classes.len(), preset) + 2;
    let have = classes
        .iter()
        .map(|c| c.score.level().min(c.index.level()))
        .min()
        .unwrap_or(0);
    if have < need {
        return Err(EvalError::LevelExhausted { have, need });
    }
    let mut round: Vec<ScoredClass> = classes.to_vec();
    while round.len() > 1 {
        let mut next = Vec::with_capacity(round.len().div_ceil(2));
        for pair in round.chunks(2) {
            if let [a, b] = pair {
                next.push(argmax_round(ev, a, b, rk, preset, bound)?);
            }
        }
        if round.len() % 2 == 1 {
            // The bye advances, aligned to the winners' level and scale
            // so the next round's subtractions stay well-formed.
            let bye = round.last().expect("odd round is non-empty");
            let template = next.last().expect("odd round of ≥3 has a pair");
            let score = align_scale(
                ev,
                &bye.score,
                template.score.level(),
                template.score.scale(),
                1.0,
            )?;
            let index = align_scale(
                ev,
                &bye.index,
                template.index.level(),
                template.index.scale(),
                1.0,
            )?;
            next.push(ScoredClass { score, index });
        }
        round = next;
    }
    Ok(round.swap_remove(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::CkksContext;
    use crate::encrypt::{Decryptor, Encryptor};
    use crate::keys::{KeyGenerator, PublicKey, SecretKey};
    use crate::params::CkksParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keys(ctx: &CkksContext, seed: u64) -> (PublicKey, SecretKey, RelinKey) {
        let mut kg = KeyGenerator::new(ctx, StdRng::seed_from_u64(seed));
        let pk = kg.public_key();
        let sk = kg.secret_key();
        let rk = kg.relin_key();
        (pk, sk, rk)
    }

    fn sample_band(floor: f64, count: usize) -> Vec<f64> {
        // Both signs, magnitudes sweeping [floor, 1].
        (0..count)
            .map(|i| {
                let t = floor + (1.0 - floor) * (i as f64) / (count - 1) as f64;
                if i % 2 == 0 {
                    t
                } else {
                    -t
                }
            })
            .collect()
    }

    #[test]
    fn reference_accuracy_within_preset_bounds() {
        for preset in SignPreset::ALL {
            let xs = sample_band(preset.input_floor(), 4001);
            let worst = xs
                .iter()
                .map(|&x| (sign_reference(x, preset) - x.signum()).abs())
                .fold(0.0f64, f64::max);
            assert!(
                worst <= preset.error_bound(),
                "{preset:?}: measured {worst} > bound {}",
                preset.error_bound()
            );
        }
    }

    #[test]
    fn reference_accuracy_monotone_in_composition_degree() {
        // Over the common band [0.35, 1], deeper compositions are
        // strictly more accurate.
        let xs = sample_band(0.35, 4001);
        let worst = |preset: SignPreset| {
            xs.iter()
                .map(|&x| (sign_reference(x, preset) - x.signum()).abs())
                .fold(0.0f64, f64::max)
        };
        let low = worst(SignPreset::Low);
        let medium = worst(SignPreset::Medium);
        let high = worst(SignPreset::High);
        assert!(low > medium, "low {low} vs medium {medium}");
        assert!(medium > high, "medium {medium} vs high {high}");
    }

    #[test]
    fn reference_output_stays_in_unit_interval() {
        for preset in SignPreset::ALL {
            for i in 0..=1000 {
                let x = -1.0 + 2.0 * (i as f64) / 1000.0;
                let y = sign_reference(x, preset);
                assert!(y.abs() <= 1.0 + 1e-9, "{preset:?}: |p({x})| = {}", y.abs());
            }
        }
    }

    fn setup(levels: usize) -> (CkksContext, Vec<f64>) {
        let ctx = CkksContext::new(CkksParams::insecure_toy(levels));
        let slots = ctx.degree() / 2;
        let values: Vec<f64> = (0..slots)
            .map(|i| {
                let t = 0.4 + 0.6 * (i as f64) / (slots - 1) as f64;
                if i % 2 == 0 {
                    t
                } else {
                    -t
                }
            })
            .collect();
        (ctx, values)
    }

    #[test]
    fn encrypted_sign_matches_plaintext_reference() {
        let (ctx, values) = setup(8);
        let (pk, sk, rk) = keys(&ctx, 71);
        let mut enc = Encryptor::new(&ctx, pk, StdRng::seed_from_u64(72));
        let dec = Decryptor::new(&ctx, sk);
        let ct = enc.encrypt(&values);
        let mut ev = Evaluator::new(&ctx);
        let out = sign_with_bound(&mut ev, &ct, &rk, SignPreset::Low, 1.0).expect("sign");
        assert_eq!(out.level(), 8 - SignPreset::Low.depth());
        let got = dec.decrypt(&out);
        for (i, (&x, &y)) in values.iter().zip(got.iter()).enumerate() {
            let want = sign_reference(x, SignPreset::Low);
            assert!(
                (y - want).abs() < 0.02,
                "slot {i}: sign({x}) decrypted {y}, reference {want}"
            );
        }
    }

    #[test]
    fn sign_records_one_macro_op_per_stage() {
        let (ctx, values) = setup(8);
        let (pk, _sk, rk) = keys(&ctx, 73);
        let mut enc = Encryptor::new(&ctx, pk, StdRng::seed_from_u64(74));
        let ct = enc.encrypt(&values);
        let mut ev = Evaluator::new(&ctx);
        ev.start_trace();
        let _ = sign_with_bound(&mut ev, &ct, &rk, SignPreset::Low, 1.0).expect("sign");
        let trace = ev.take_trace().expect("trace");
        assert_eq!(trace.hop_count(), 2, "one macro record per stage");
        assert_eq!(trace.count_of(HeOpKind::Sign), 2);
        let levels: Vec<usize> = trace.records().iter().map(|r| r.level).collect();
        assert_eq!(levels, vec![8, 5], "stages entered at 8 and 5");
    }

    #[test]
    fn sign_rejects_shallow_ciphertexts() {
        let (ctx, values) = setup(4);
        let (pk, _sk, rk) = keys(&ctx, 75);
        let mut enc = Encryptor::new(&ctx, pk, StdRng::seed_from_u64(76));
        let ct = enc.encrypt(&values);
        let mut ev = Evaluator::new(&ctx);
        match sign_with_bound(&mut ev, &ct, &rk, SignPreset::Medium, 1.0) {
            Err(EvalError::LevelExhausted { have: 4, need: 11 }) => {}
            other => panic!("expected LevelExhausted, got {other:?}"),
        }
    }

    #[test]
    fn relu_approx_tracks_reference() {
        let (ctx, values) = setup(10);
        let (pk, sk, rk) = keys(&ctx, 77);
        let mut enc = Encryptor::new(&ctx, pk, StdRng::seed_from_u64(78));
        let dec = Decryptor::new(&ctx, sk);
        let ct = enc.encrypt(&values);
        let mut ev = Evaluator::new(&ctx);
        let out = relu_approx(&mut ev, &ct, &rk, SignPreset::Low, 1.0).expect("relu");
        assert_eq!(out.level(), 10 - relu_depth(SignPreset::Low));
        let got = dec.decrypt(&out);
        for (i, (&x, &y)) in values.iter().zip(got.iter()).enumerate() {
            let want = x * (1.0 + sign_reference(x, SignPreset::Low)) / 2.0;
            assert!(
                (y - want).abs() < 0.02,
                "slot {i}: relu({x}) decrypted {y}, circuit reference {want}"
            );
            // Semantically: close to max(x, 0) within the preset bound.
            assert!(
                (y - x.max(0.0)).abs() < SignPreset::Low.error_bound(),
                "slot {i}: relu({x}) = {y} strays from max(x, 0)"
            );
        }
    }

    #[test]
    fn max_pool2_selects_the_larger_input() {
        let (ctx, _) = setup(9);
        let slots = ctx.degree() / 2;
        let (pk, sk, rk) = keys(&ctx, 79);
        let mut enc = Encryptor::new(&ctx, pk, StdRng::seed_from_u64(80));
        let dec = Decryptor::new(&ctx, sk);
        // Pairs separated beyond the dead band (|a−b| ≥ 2·0.35 here).
        let a_vals: Vec<f64> = (0..slots)
            .map(|i| if i % 2 == 0 { 0.8 } else { -0.9 })
            .collect();
        let b_vals: Vec<f64> = (0..slots)
            .map(|i| if i % 2 == 0 { -0.1 } else { 0.3 })
            .collect();
        let ca = enc.encrypt(&a_vals);
        let cb = enc.encrypt(&b_vals);
        let mut ev = Evaluator::new(&ctx);
        let out = max_pool2(&mut ev, &ca, &cb, &rk, SignPreset::Low, 1.0).expect("max_pool2");
        assert_eq!(out.level(), 9 - max_pool2_depth(SignPreset::Low));
        let got = dec.decrypt(&out);
        for i in 0..slots {
            let want = a_vals[i].max(b_vals[i]);
            assert!(
                (got[i] - want).abs() < 0.15,
                "slot {i}: max({}, {}) decrypted {}, want {want}",
                a_vals[i],
                b_vals[i],
                got[i]
            );
        }
    }

    #[test]
    fn encrypted_argmax_finds_the_best_class() {
        // Four classes, one tournament bracket: depth 2·(6+2) = 16.
        let levels = argmax_depth(4, SignPreset::Low) + 2;
        let ctx = CkksContext::new(CkksParams::insecure_toy(levels));
        let slots = ctx.degree() / 2;
        let (pk, sk, rk) = keys(&ctx, 81);
        let mut enc = Encryptor::new(&ctx, pk, StdRng::seed_from_u64(82));
        let dec = Decryptor::new(&ctx, sk);
        let scores = [0.1f64, 0.9, -0.4, -0.8];
        let classes: Vec<ScoredClass> = scores
            .iter()
            .enumerate()
            .map(|(i, &s)| ScoredClass {
                score: enc.encrypt(&vec![s; slots]),
                index: enc.encrypt(&vec![i as f64; slots]),
            })
            .collect();
        let mut ev = Evaluator::new(&ctx);
        let winner =
            encrypted_argmax(&mut ev, &classes, &rk, SignPreset::Low, 1.0).expect("argmax");
        let idx = dec.decrypt(&winner.index);
        let score = dec.decrypt(&winner.score);
        assert!(
            (idx[0] - 1.0).abs() < 0.2,
            "argmax index decrypted {} want 1",
            idx[0]
        );
        assert!(
            (score[0] - 0.9).abs() < 0.2,
            "argmax score decrypted {} want 0.9",
            score[0]
        );
    }
}

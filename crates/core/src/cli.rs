//! Command-line interface (argument parsing and command execution) for
//! the `fxhenn` binary.
//!
//! Kept dependency-free: arguments are `--key value` pairs parsed by
//! hand. The binary in `src/bin/fxhenn.rs` is a thin wrapper so the
//! parser and command logic stay unit-testable.

use crate::flow::generate_accelerator_with_floor;
use crate::report::{layer_table, module_table, summary};
use crate::serve::{
    BatchDriver, ChaosService, DesignFlowService, InferenceRequest, InferenceService, ModelCache,
    ServeConfig,
};
use fxhenn_ckks::CkksParams;
use fxhenn_hw::FpgaDevice;
use fxhenn_nn::{fxhenn_cifar10, fxhenn_mnist, Network};
use fxhenn_obs::AttributionRow;
use std::time::Duration;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run the design flow for a model on a device.
    Design {
        /// "mnist" or "cifar10".
        model: String,
        /// "acu9eg" or "acu15eg".
        device: String,
        /// Plan-time noise-admission floor, in bits of remaining
        /// budget; flows whose predicted trajectory dips to or below
        /// this are rejected before DSE.
        noise_floor_bits: f64,
    },
    /// Functionally co-simulate a toy network (real encryption).
    Cosim {
        /// RNG seed.
        seed: u64,
    },
    /// Print workload information for a model.
    Info {
        /// "mnist" or "cifar10".
        model: String,
    },
    /// Run the deadline-aware batch driver over a stream of design
    /// requests (demonstrates load shedding and per-request deadlines).
    Serve {
        /// "mnist" or "cifar10".
        model: String,
        /// Requests to submit.
        requests: u64,
        /// Deadline per request, in milliseconds.
        deadline_ms: u64,
        /// Admission queue capacity.
        queue: usize,
        /// Every n-th request gets a deliberately tight (1 ms)
        /// deadline; 0 disables the mix.
        tight_every: u64,
        /// Spread requests round-robin across this many tenants
        /// (tenant-0, tenant-1, …); 1 keeps the default tenant.
        tenants: usize,
        /// Worker evaluators in the pool.
        workers: usize,
        /// Serve against the deterministic chaos fault injector (over
        /// real CKKS key material) instead of the design flow.
        chaos: bool,
        /// Seed for the chaos schedule and key generation.
        seed: u64,
        /// Append a Prometheus text exposition of the global collector
        /// to the output.
        metrics: bool,
        /// Serve exactly one HTTP scrape of the exposition on this
        /// local port before exiting (0 picks a free port).
        metrics_port: Option<u16>,
    },
    /// Run one instrumented encrypted inference on the toy network and
    /// report measured-vs-analytic latency attribution.
    Infer {
        /// RNG seed.
        seed: u64,
        /// "text" or "json".
        report: String,
        /// Runtime noise floor for the executor's evaluator, in bits;
        /// ops that would drop the tracked budget to or below this
        /// fail typed instead of decrypting garbage.
        noise_floor_bits: f64,
    },
    /// Print usage.
    Help,
}

/// Parse or execution errors with a user-facing message, tagged with
/// the phase that produced them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    phase: &'static str,
    message: String,
}

impl CliError {
    /// Creates an error attributed to `phase`.
    #[must_use]
    pub fn new(phase: &'static str, message: impl Into<String>) -> Self {
        Self {
            phase,
            message: message.into(),
        }
    }

    /// The phase that produced the error — a stable label suitable for
    /// span and metric names ("parse", "design", "serve", "infer", …).
    #[must_use]
    pub fn phase(&self) -> &'static str {
        self.phase
    }

    /// The human-readable message, without the phase prefix.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.phase, self.message)
    }
}

impl std::error::Error for CliError {}

/// Usage text.
pub const USAGE: &str = "\
fxhenn — FPGA accelerator designs for HE-CNN inference

USAGE:
    fxhenn design --model <mnist|cifar10> --device <acu9eg|acu15eg>
                  [--noise-floor-bits <f64>]
    fxhenn cosim  [--seed <u64>]
    fxhenn infer  [--seed <u64>] [--report <text|json>] [--noise-floor-bits <f64>]
    fxhenn info   --model <mnist|cifar10>
    fxhenn serve  [--model <mnist|cifar10>] [--requests <n>] [--deadline-ms <ms>]
                  [--queue <n>] [--tight-every <n>] [--tenants <n>] [--workers <n>]
                  [--chaos] [--seed <u64>] [--metrics] [--metrics-port <port>]
    fxhenn help
";

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Parses a command line (without the program name).
///
/// # Errors
///
/// Returns a [`CliError`] with a usage hint on unknown commands or
/// missing/invalid flags.
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let parse_err = |m: String| CliError::new("parse", m);
    match args.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
        Some("design") => {
            let model = flag_value(args, "--model")
                .ok_or_else(|| parse_err("design needs --model <mnist|cifar10>".into()))?;
            let device = flag_value(args, "--device")
                .ok_or_else(|| parse_err("design needs --device <acu9eg|acu15eg>".into()))?;
            validate_model(model)?;
            validate_device(device)?;
            Ok(Command::Design {
                model: model.to_string(),
                device: device.to_string(),
                noise_floor_bits: parse_f64_flag(
                    args,
                    "--noise-floor-bits",
                    fxhenn_nn::DEFAULT_PLAN_FLOOR_BITS,
                )?,
            })
        }
        Some("cosim") => Ok(Command::Cosim {
            seed: parse_flag(args, "--seed", 7)?,
        }),
        Some("infer") => {
            let report = flag_value(args, "--report").unwrap_or("text");
            match report {
                "text" | "json" => {}
                other => {
                    return Err(parse_err(format!(
                        "--report must be text or json, got {other:?}"
                    )))
                }
            }
            Ok(Command::Infer {
                seed: parse_flag(args, "--seed", 7)?,
                report: report.to_string(),
                noise_floor_bits: parse_f64_flag(args, "--noise-floor-bits", 0.0)?,
            })
        }
        Some("info") => {
            let model = flag_value(args, "--model")
                .ok_or_else(|| parse_err("info needs --model <mnist|cifar10>".into()))?;
            validate_model(model)?;
            Ok(Command::Info {
                model: model.to_string(),
            })
        }
        Some("serve") => {
            let model = flag_value(args, "--model").unwrap_or("mnist");
            validate_model(model)?;
            let metrics_port = match flag_value(args, "--metrics-port") {
                None => None,
                Some(s) => Some(s.parse().map_err(|_| {
                    parse_err(format!("--metrics-port must be a port number, got {s:?}"))
                })?),
            };
            Ok(Command::Serve {
                model: model.to_string(),
                requests: parse_flag(args, "--requests", 6)?,
                deadline_ms: parse_flag(args, "--deadline-ms", 30_000)?,
                queue: parse_flag(args, "--queue", 4)?,
                tight_every: parse_flag(args, "--tight-every", 3)?,
                tenants: parse_flag(args, "--tenants", 1)?,
                workers: parse_flag(args, "--workers", 1)?,
                chaos: args.iter().any(|a| a == "--chaos"),
                seed: parse_flag(args, "--seed", 7)?,
                metrics: args.iter().any(|a| a == "--metrics"),
                metrics_port,
            })
        }
        Some(other) => Err(parse_err(format!("unknown command {other:?}\n{USAGE}"))),
    }
}

fn parse_flag<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
    default: T,
) -> Result<T, CliError> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(s) => s.parse().map_err(|_| {
            CliError::new("parse", format!("{flag} must be an integer, got {s:?}"))
        }),
    }
}

fn parse_f64_flag(args: &[String], flag: &str, default: f64) -> Result<f64, CliError> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(s) => match s.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(v),
            _ => Err(CliError::new(
                "parse",
                format!("{flag} must be a finite number, got {s:?}"),
            )),
        },
    }
}

fn validate_model(model: &str) -> Result<(), CliError> {
    match model {
        "mnist" | "cifar10" => Ok(()),
        other => Err(CliError::new(
            "parse",
            format!("unknown model {other:?}: expected mnist or cifar10"),
        )),
    }
}

fn validate_device(device: &str) -> Result<(), CliError> {
    match device {
        "acu9eg" | "acu15eg" => Ok(()),
        other => Err(CliError::new(
            "parse",
            format!("unknown device {other:?}: expected acu9eg or acu15eg"),
        )),
    }
}

fn model_of(name: &str) -> Result<(Network, CkksParams), CliError> {
    match name {
        "mnist" => Ok((fxhenn_mnist(42), CkksParams::fxhenn_mnist())),
        "cifar10" => Ok((fxhenn_cifar10(42), CkksParams::fxhenn_cifar10())),
        other => Err(CliError::new(
            "parse",
            format!("unknown model {other:?}: expected mnist or cifar10"),
        )),
    }
}

fn device_of(name: &str) -> Result<FpgaDevice, CliError> {
    match name {
        "acu9eg" => Ok(FpgaDevice::acu9eg()),
        "acu15eg" => Ok(FpgaDevice::acu15eg()),
        other => Err(CliError::new(
            "parse",
            format!("unknown device {other:?}: expected acu9eg or acu15eg"),
        )),
    }
}

/// Executes a parsed command, returning its stdout text.
///
/// # Errors
///
/// Returns a [`CliError`] when the flow fails (e.g. no feasible design).
pub fn run(cmd: &Command) -> Result<String, CliError> {
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::Design {
            model,
            device,
            noise_floor_bits,
        } => {
            let (net, params) = model_of(model)?;
            let dev = device_of(device)?;
            let report = generate_accelerator_with_floor(&net, &params, &dev, *noise_floor_bits)
                .map_err(|e| CliError::new(e.phase(), e.to_string()))?;
            Ok(format!(
                "{}\n\nModules:\n{}\nLayers:\n{}",
                summary(&report, &dev),
                module_table(&report),
                layer_table(&report)
            ))
        }
        Command::Info { model } => {
            let (net, params) = model_of(model)?;
            let prog = fxhenn_nn::try_lower_network(&net, params.degree(), params.levels())
                .map_err(|e| CliError::new("info", e.to_string()))?;
            let mut out = format!(
                "{}: N={}, L={}, log2Q={}, {}\n{} HOPs, {} KeySwitches, {:.1} MB encoded model\n",
                net.name(),
                params.degree(),
                params.levels(),
                params.total_modulus_bits(),
                params.security(),
                prog.hop_count(),
                prog.key_switch_count(),
                prog.model_size_bytes() as f64 / (1024.0 * 1024.0),
            );
            for plan in &prog.layers {
                out.push_str(&format!(
                    "  {:<6} [{}] {:>6} HOPs {:>6} KS, level {} -> {}\n",
                    plan.name,
                    plan.class,
                    plan.hop_count(),
                    plan.key_switch_count(),
                    plan.level_in,
                    plan.level_out
                ));
            }
            Ok(out)
        }
        Command::Serve {
            model,
            requests,
            deadline_ms,
            queue,
            tight_every,
            tenants,
            workers,
            chaos,
            seed,
            metrics,
            metrics_port,
        } => {
            validate_model(model)?;
            if *metrics || metrics_port.is_some() {
                // Register every metric family up front so the
                // exposition renders them (at zero) even for families
                // this run never touches.
                crate::telemetry::register_serve_metrics();
                fxhenn_ckks::register_he_metrics();
                fxhenn_ckks::register_noise_metrics();
                fxhenn_nn::register_nn_metrics();
            }
            let cfg = ServeConfig {
                queue_capacity: (*queue).max(1),
                worker_count: (*workers).max(1),
                ..ServeConfig::default()
            };
            let mut out = String::new();
            if *chaos {
                // Chaos mode: a shared, integrity-checked key cache
                // feeds every worker; the injector rolls deterministic
                // faults from --seed.
                let mut cache = ModelCache::new();
                cache.generate("chaos", CkksParams::insecure_toy(3), &[1, 2], *seed);
                let cache = std::sync::Arc::new(cache);
                let worker_seed = *seed;
                let mut driver = BatchDriver::with_factory(
                    cfg,
                    Box::new(move || ChaosService::from_cache(&cache, "chaos", worker_seed)),
                )
                .map_err(|e| CliError::new("serve", e.to_string()))?;
                run_serve_stream(
                    &mut driver,
                    *requests,
                    *deadline_ms,
                    *tight_every,
                    *tenants,
                    "chaos",
                    &mut out,
                    |_| "ok".to_string(),
                );
            } else if *workers > 1 {
                let mut driver = BatchDriver::with_factory(
                    cfg,
                    Box::new(|| Ok(DesignFlowService::new(FpgaDevice::acu9eg()))),
                )
                .map_err(|e| CliError::new("serve", e.to_string()))?;
                run_serve_stream(
                    &mut driver,
                    *requests,
                    *deadline_ms,
                    *tight_every,
                    *tenants,
                    model,
                    &mut out,
                    |report| {
                        format!("ok, {:.3} s simulated inference latency", report.latency_s())
                    },
                );
            } else {
                let mut driver =
                    BatchDriver::new(DesignFlowService::new(FpgaDevice::acu9eg()), cfg);
                run_serve_stream(
                    &mut driver,
                    *requests,
                    *deadline_ms,
                    *tight_every,
                    *tenants,
                    model,
                    &mut out,
                    |report| {
                        format!("ok, {:.3} s simulated inference latency", report.latency_s())
                    },
                );
            }
            if *metrics || metrics_port.is_some() {
                let exposition = fxhenn_obs::render_prometheus(fxhenn_obs::global());
                if let Some(port) = metrics_port {
                    let listener = std::net::TcpListener::bind(("127.0.0.1", *port))
                        .map_err(|e| {
                            CliError::new(
                                "serve",
                                format!("metrics endpoint: cannot bind port {port}: {e}"),
                            )
                        })?;
                    let addr = serve_metrics_once(&listener, &exposition)?;
                    out.push_str(&format!("metrics: served one scrape on http://{addr}\n"));
                }
                if *metrics {
                    out.push_str(&exposition);
                }
            }
            Ok(out)
        }
        Command::Infer {
            seed,
            report,
            noise_floor_bits,
        } => run_infer(*seed, report, *noise_floor_bits),
        Command::Cosim { seed } => {
            let net = fxhenn_nn::toy_mnist_like(*seed);
            let image = fxhenn_nn::synthetic_input(&net, *seed);
            let report = fxhenn_sim::try_cosimulate(
                &net,
                &image,
                CkksParams::insecure_toy(7),
                *seed,
            )
            .map_err(|e| CliError::new("cosim", e.to_string()))?;
            Ok(format!(
                "toy network, seed {seed}\nplaintext logits: {:?}\ndecrypted logits: {:?}\n\
                 max error {:.5}, argmax agrees: {}, trace matches: {}\n",
                report.expected,
                report.actual,
                report.max_error,
                report.argmax_agrees,
                report.trace_matches()
            ))
        }
    }
}

/// Submits `requests` requests (round-robin across `tenants` tenants,
/// every `tight_every`-th with a deliberately tight 1 ms deadline),
/// drains the queue and appends one line per outcome plus the report.
#[allow(clippy::too_many_arguments)]
fn run_serve_stream<S: InferenceService>(
    driver: &mut BatchDriver<S>,
    requests: u64,
    deadline_ms: u64,
    tight_every: u64,
    tenants: usize,
    model: &str,
    out: &mut String,
    render: impl Fn(&S::Output) -> String,
) {
    for id in 0..requests {
        let tight = tight_every != 0 && (id + 1) % tight_every == 0;
        let deadline = if tight {
            Duration::from_millis(1)
        } else {
            Duration::from_millis(deadline_ms)
        };
        let mut req = InferenceRequest::new(id, model, deadline);
        if tenants > 1 {
            req = req.with_tenant(format!("tenant-{}", id % tenants as u64));
        }
        if let Err(e) = driver.submit(req) {
            out.push_str(&format!("request {id}: rejected: {e}\n"));
        }
    }
    for (id, outcome) in driver.run_queue() {
        match outcome {
            Ok(o) => out.push_str(&format!("request {id}: {}\n", render(&o))),
            Err(e) => out.push_str(&format!("request {id}: {e}\n")),
        }
    }
    out.push_str(&format!("serve: {}\n", driver.report()));
}

/// Serves exactly one HTTP scrape of `body` on `listener`, then
/// returns the local address it served on. The accept loop is
/// non-blocking with a 60 s deadline so a scrape that never arrives
/// cannot wedge the CLI.
fn serve_metrics_once(
    listener: &std::net::TcpListener,
    body: &str,
) -> Result<std::net::SocketAddr, CliError> {
    use std::io::{Read as _, Write as _};
    let err = |m: String| CliError::new("serve", m);
    listener
        .set_nonblocking(true)
        .map_err(|e| err(format!("metrics endpoint: {e}")))?;
    let addr = listener
        .local_addr()
        .map_err(|e| err(format!("metrics endpoint: {e}")))?;
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
                // Drain (part of) the request line; the response is the
                // same whatever was asked.
                let mut buf = [0u8; 1024];
                let _ = stream.read(&mut buf);
                let response = format!(
                    "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
                     Content-Length: {}\r\nConnection: close\r\n\r\n{}",
                    body.len(),
                    body
                );
                stream
                    .write_all(response.as_bytes())
                    .map_err(|e| err(format!("metrics endpoint: {e}")))?;
                return Ok(addr);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if std::time::Instant::now() >= deadline {
                    return Err(err(
                        "metrics endpoint: no scrape arrived within 60 s".to_string()
                    ));
                }
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => return Err(err(format!("metrics endpoint: {e}"))),
        }
    }
}

/// Runs one instrumented encrypted inference of the toy network and
/// joins the measured per-op/per-layer wall time against the analytic
/// cycle model of the DSE-optimal design for the same program — the
/// paper's Table I validation loop as a CLI command.
fn run_infer(seed: u64, report: &str, noise_floor_bits: f64) -> Result<String, CliError> {
    use fxhenn_ckks::{CkksContext, Encryptor, HeOpKind, KeyGenerator};
    use fxhenn_hw::{HeOpModule, OpClass};
    use fxhenn_nn::executor::{try_encrypt_input, HeCnnExecutor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let err = |m: String| CliError::new("infer", m);
    let net = fxhenn_nn::toy_mnist_like(seed);
    let image = fxhenn_nn::synthetic_input(&net, seed);
    let params = CkksParams::insecure_toy(7);
    let ctx = CkksContext::new(params.clone());
    let prog = fxhenn_nn::try_lower_network(&net, ctx.degree(), ctx.max_level())
        .map_err(|e| err(e.to_string()))?;

    // Analytic side of the join: the DSE-optimal module set for this
    // program on the reference device.
    let device = FpgaDevice::acu9eg();
    let dse = fxhenn_dse::explore::try_explore_default(&prog, &device, params.prime_bits())
        .map_err(|e| CliError::new("dse", e.to_string()))?;
    let design = dse
        .best
        .ok_or_else(|| err(format!("no feasible design on {}", device.name())))?;
    let modules = design.point.modules.clone();
    let cycles_of = |kind: HeOpKind, level: usize| -> u64 {
        let class = OpClass::from(kind);
        HeOpModule::new(class, modules.get(class)).op_latency_cycles(level, ctx.degree())
    };

    // Measured side: the real encrypted inference, with op spans and
    // layer spans on.
    let mut kg = KeyGenerator::new(&ctx, StdRng::seed_from_u64(seed));
    let pk = kg.public_key();
    let rk = kg.relin_key();
    let gks = kg.galois_keys(&prog.required_rotations());
    let mut enc = Encryptor::new(&ctx, pk, StdRng::seed_from_u64(seed ^ 0x5eed));
    let input = try_encrypt_input(&net, &image, &mut enc, ctx.degree() / 2)
        .map_err(|e| err(e.to_string()))?;
    let mut exec = HeCnnExecutor::new(&ctx, &rk, &gks);
    exec.set_noise_floor_bits(noise_floor_bits);
    exec.start_spans();
    exec.start_layer_spans();
    let _output = exec.try_run(&net, &input).map_err(|e| err(e.to_string()))?;
    let spans = exec
        .take_spans()
        .ok_or_else(|| err("executor produced no op spans".into()))?;
    let layer_spans = exec
        .take_layer_spans()
        .ok_or_else(|| err("executor produced no layer spans".into()))?;

    // Per-kind join, in HeOpKind::ALL order.
    let mut per_kind: Vec<(String, u64, u64, u64)> = Vec::new();
    for kind in HeOpKind::ALL {
        let mut count = 0u64;
        let mut ns = 0u64;
        let mut cycles = 0u64;
        for s in spans.spans() {
            if s.label.0 == kind {
                count += 1;
                ns += s.nanos;
                cycles += cycles_of(kind, s.label.1);
            }
        }
        if count > 0 {
            per_kind.push((kind.to_string(), count, ns, cycles));
        }
    }
    let op_rows = fxhenn_obs::attribution_rows(&per_kind);

    // Per-layer join: measured layer wall time against the modeled
    // cycles of that layer plan's op trace.
    let per_layer: Vec<(String, u64, u64, u64)> = layer_spans
        .spans()
        .iter()
        .map(|s| {
            let modeled: u64 = prog
                .layers
                .iter()
                .find(|p| p.name == s.label)
                .map(|p| {
                    p.trace
                        .records()
                        .iter()
                        .map(|r| cycles_of(r.kind, r.level))
                        .sum()
                })
                .unwrap_or(0);
            (s.label.clone(), 1, s.nanos, modeled)
        })
        .collect();
    let layer_rows = fxhenn_obs::attribution_rows(&per_layer);

    match report {
        "json" => Ok(render_infer_json(
            seed,
            net.name(),
            device.name(),
            ctx.degree(),
            spans.total_nanos(),
            &op_rows,
            &layer_rows,
        )),
        _ => Ok(render_infer_text(
            seed,
            net.name(),
            device.name(),
            ctx.degree(),
            spans.total_nanos(),
            &op_rows,
            &layer_rows,
        )),
    }
}

fn render_attr_json(rows: &[AttributionRow]) -> String {
    rows.iter()
        .map(|r| {
            format!(
                "    {{\"key\": \"{}\", \"count\": {}, \"measured_ns\": {}, \
                 \"modeled_cycles\": {}, \"measured_share_pct\": {:.4}, \
                 \"modeled_share_pct\": {:.4}, \"model_error_pct\": {:.4}}}",
                r.key,
                r.count,
                r.measured_ns,
                r.modeled_cycles,
                r.measured_share_pct,
                r.modeled_share_pct,
                r.model_error_pct
            )
        })
        .collect::<Vec<_>>()
        .join(",\n")
}

#[allow(clippy::too_many_arguments)]
fn render_infer_json(
    seed: u64,
    network: &str,
    device: &str,
    degree: usize,
    total_ns: u64,
    op_rows: &[AttributionRow],
    layer_rows: &[AttributionRow],
) -> String {
    format!(
        "{{\n  \"schema\": \"fxhenn-infer-report/v1\",\n  \"seed\": {seed},\n  \
         \"network\": \"{network}\",\n  \"device\": \"{device}\",\n  \
         \"degree\": {degree},\n  \"total_measured_ns\": {total_ns},\n  \
         \"ops\": [\n{}\n  ],\n  \"layers\": [\n{}\n  ]\n}}\n",
        render_attr_json(op_rows),
        render_attr_json(layer_rows),
    )
}

fn render_attr_table(out: &mut String, rows: &[AttributionRow]) {
    out.push_str(&format!(
        "  {:<12} {:>6} {:>14} {:>15} {:>7} {:>7} {:>8}\n",
        "key", "count", "measured_ns", "modeled_cycles", "meas%", "model%", "err(pp)"
    ));
    for r in rows {
        out.push_str(&format!(
            "  {:<12} {:>6} {:>14} {:>15} {:>7.2} {:>7.2} {:>+8.2}\n",
            r.key,
            r.count,
            r.measured_ns,
            r.modeled_cycles,
            r.measured_share_pct,
            r.modeled_share_pct,
            r.model_error_pct
        ));
    }
}

#[allow(clippy::too_many_arguments)]
fn render_infer_text(
    seed: u64,
    network: &str,
    device: &str,
    degree: usize,
    total_ns: u64,
    op_rows: &[AttributionRow],
    layer_rows: &[AttributionRow],
) -> String {
    let mut out = format!(
        "{network}, seed {seed}, N={degree}, analytic model for {device}\n\
         measured HE time: {:.3} ms\n\nper-op attribution (share space):\n",
        total_ns as f64 / 1e6
    );
    render_attr_table(&mut out, op_rows);
    out.push_str("\nper-layer attribution (share space):\n");
    render_attr_table(&mut out, layer_rows);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parses_design_command() {
        let cmd = parse(&args(&["design", "--model", "mnist", "--device", "acu9eg"])).unwrap();
        assert_eq!(
            cmd,
            Command::Design {
                model: "mnist".into(),
                device: "acu9eg".into(),
                noise_floor_bits: fxhenn_nn::DEFAULT_PLAN_FLOOR_BITS,
            }
        );
        let cmd = parse(&args(&[
            "design",
            "--model",
            "mnist",
            "--device",
            "acu9eg",
            "--noise-floor-bits",
            "6.5",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Design {
                model: "mnist".into(),
                device: "acu9eg".into(),
                noise_floor_bits: 6.5,
            }
        );
        assert!(parse(&args(&[
            "design",
            "--model",
            "mnist",
            "--device",
            "acu9eg",
            "--noise-floor-bits",
            "NaN",
        ]))
        .is_err());
    }

    #[test]
    fn parses_cosim_with_default_seed() {
        assert_eq!(parse(&args(&["cosim"])).unwrap(), Command::Cosim { seed: 7 });
        assert_eq!(
            parse(&args(&["cosim", "--seed", "42"])).unwrap(),
            Command::Cosim { seed: 42 }
        );
    }

    #[test]
    fn rejects_unknown_model_and_device() {
        assert!(parse(&args(&["design", "--model", "resnet", "--device", "acu9eg"])).is_err());
        assert!(parse(&args(&["design", "--model", "mnist", "--device", "vu9p"])).is_err());
        assert!(parse(&args(&["design", "--model", "mnist"])).is_err());
    }

    #[test]
    fn rejects_bad_seed_and_unknown_command() {
        assert!(parse(&args(&["cosim", "--seed", "abc"])).is_err());
        assert!(parse(&args(&["frobnicate"])).is_err());
    }

    #[test]
    fn empty_and_help_yield_usage() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&args(&["help"])).unwrap(), Command::Help);
        let out = run(&Command::Help).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn info_runs_for_mnist() {
        let cmd = parse(&args(&["info", "--model", "mnist"])).unwrap();
        let out = run(&cmd).unwrap();
        assert!(out.contains("FxHENN-MNIST"));
        assert!(out.contains("HOPs"));
        assert!(out.contains("Cnv1"));
    }

    #[test]
    fn cosim_runs_and_agrees() {
        let out = run(&Command::Cosim { seed: 3 }).unwrap();
        assert!(out.contains("argmax agrees: true"), "{out}");
        assert!(out.contains("trace matches: true"));
    }

    #[test]
    fn unvalidated_command_is_an_error_not_a_panic() {
        // Commands constructed directly (bypassing parse) must still
        // fail with a typed error instead of hitting unreachable code.
        let err = run(&Command::Design {
            model: "resnet".into(),
            device: "acu9eg".into(),
            noise_floor_bits: fxhenn_nn::DEFAULT_PLAN_FLOOR_BITS,
        })
        .unwrap_err();
        assert!(err.to_string().contains("unknown model"), "{err}");
        let err = run(&Command::Design {
            model: "mnist".into(),
            device: "vu9p".into(),
            noise_floor_bits: fxhenn_nn::DEFAULT_PLAN_FLOOR_BITS,
        })
        .unwrap_err();
        assert!(err.to_string().contains("unknown device"), "{err}");
        assert!(run(&Command::Info {
            model: "vgg".into()
        })
        .is_err());
    }

    #[test]
    fn parses_serve_with_defaults_and_overrides() {
        assert_eq!(
            parse(&args(&["serve"])).unwrap(),
            Command::Serve {
                model: "mnist".into(),
                requests: 6,
                deadline_ms: 30_000,
                queue: 4,
                tight_every: 3,
                tenants: 1,
                workers: 1,
                chaos: false,
                seed: 7,
                metrics: false,
                metrics_port: None,
            }
        );
        assert_eq!(
            parse(&args(&[
                "serve",
                "--model",
                "mnist",
                "--requests",
                "10",
                "--deadline-ms",
                "500",
                "--queue",
                "2",
                "--tight-every",
                "0",
                "--tenants",
                "3",
                "--workers",
                "2",
                "--chaos",
                "--seed",
                "11",
                "--metrics",
                "--metrics-port",
                "9464",
            ]))
            .unwrap(),
            Command::Serve {
                model: "mnist".into(),
                requests: 10,
                deadline_ms: 500,
                queue: 2,
                tight_every: 0,
                tenants: 3,
                workers: 2,
                chaos: true,
                seed: 11,
                metrics: true,
                metrics_port: Some(9464),
            }
        );
        assert!(parse(&args(&["serve", "--model", "resnet"])).is_err());
        assert!(parse(&args(&["serve", "--requests", "many"])).is_err());
        assert!(parse(&args(&["serve", "--metrics-port", "not-a-port"])).is_err());
    }

    #[test]
    fn parses_infer_and_validates_report_format() {
        assert_eq!(
            parse(&args(&["infer"])).unwrap(),
            Command::Infer {
                seed: 7,
                report: "text".into(),
                noise_floor_bits: 0.0,
            }
        );
        assert_eq!(
            parse(&args(&[
                "infer",
                "--seed",
                "3",
                "--report",
                "json",
                "--noise-floor-bits",
                "1.5",
            ]))
            .unwrap(),
            Command::Infer {
                seed: 3,
                report: "json".into(),
                noise_floor_bits: 1.5,
            }
        );
        let err = parse(&args(&["infer", "--report", "xml"])).unwrap_err();
        assert_eq!(err.phase(), "parse");
        assert!(err.to_string().contains("--report"), "{err}");
    }

    #[test]
    fn cli_error_display_leads_with_the_phase() {
        let e = CliError::new("serve", "boom");
        assert_eq!(e.to_string(), "serve: boom");
        assert_eq!(e.phase(), "serve");
        assert_eq!(e.message(), "boom");
    }

    #[test]
    fn serve_sheds_load_beyond_the_queue() {
        // 3 requests into a 1-slot queue: one completes, two are shed
        // with a typed overload rejection — and the driver reports it.
        let out = run(&Command::Serve {
            model: "mnist".into(),
            requests: 3,
            deadline_ms: 60_000,
            queue: 1,
            tight_every: 0,
            tenants: 1,
            workers: 1,
            chaos: false,
            seed: 7,
            metrics: false,
            metrics_port: None,
        })
        .unwrap();
        assert!(out.contains("request 0: ok"), "{out}");
        assert!(out.contains("request 1: rejected: overloaded"), "{out}");
        assert!(out.contains("request 2: rejected: overloaded"), "{out}");
        assert!(out.contains("completed=1 shed=2"), "{out}");
    }

    #[test]
    fn serve_cancels_a_tight_deadline_request() {
        // Every request tight (1 ms): the flow is stopped by its
        // budget and reported as cancelled, not as infeasible.
        let out = run(&Command::Serve {
            model: "mnist".into(),
            requests: 1,
            deadline_ms: 60_000,
            queue: 1,
            tight_every: 1,
            tenants: 1,
            workers: 1,
            chaos: false,
            seed: 7,
            metrics: false,
            metrics_port: None,
        })
        .unwrap();
        assert!(out.contains("request 0: request stopped:"), "{out}");
        assert!(out.contains("expired during"), "{out}");
        assert!(out.contains("cancelled=1"), "{out}");
    }

    #[test]
    fn serve_metrics_flag_appends_the_exposition() {
        let out = run(&Command::Serve {
            model: "mnist".into(),
            requests: 2,
            deadline_ms: 60_000,
            queue: 1,
            tight_every: 0,
            tenants: 1,
            workers: 1,
            chaos: false,
            seed: 7,
            metrics: true,
            metrics_port: None,
        })
        .unwrap();
        assert!(out.contains("# TYPE fxhenn_serve_shed_total counter"), "{out}");
        assert!(out.contains("# TYPE fxhenn_serve_queue_depth gauge"), "{out}");
        assert!(
            out.contains("# TYPE fxhenn_serve_workers_healthy gauge"),
            "{out}"
        );
        assert!(
            out.contains("# TYPE fxhenn_serve_worker_quarantines_total counter"),
            "{out}"
        );
        assert!(
            out.contains("# TYPE fxhenn_serve_service_time_ns histogram"),
            "{out}"
        );
        // Registration makes families this run never touched render too.
        assert!(out.contains("fxhenn_nn_layers_total"), "{out}");
    }

    #[test]
    fn serve_chaos_mode_terminates_every_request_with_a_typed_outcome() {
        let out = run(&Command::Serve {
            model: "mnist".into(),
            requests: 12,
            deadline_ms: 10_000,
            queue: 16,
            tight_every: 0,
            tenants: 3,
            workers: 2,
            chaos: true,
            seed: 7,
            metrics: false,
            metrics_port: None,
        })
        .unwrap();
        // Every request appears exactly once in the output with a
        // typed line, and the report accounts for all twelve.
        for id in 0..12 {
            assert!(out.contains(&format!("request {id}: ")), "{out}");
        }
        assert!(out.contains("submitted=12"), "{out}");
    }

    #[test]
    fn metrics_endpoint_serves_one_scrape_and_exits() {
        use std::io::{Read as _, Write as _};
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut stream = std::net::TcpStream::connect(addr).unwrap();
            stream
                .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
                .unwrap();
            let mut response = String::new();
            stream.read_to_string(&mut response).unwrap();
            response
        });
        let served = serve_metrics_once(&listener, "demo_total 1\n").unwrap();
        assert_eq!(served, addr);
        let response = client.join().unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("text/plain; version=0.0.4"), "{response}");
        assert!(response.ends_with("demo_total 1\n"), "{response}");
    }

    #[test]
    fn infer_reports_measured_vs_analytic_attribution() {
        let text = run(&Command::Infer {
            seed: 3,
            report: "text".into(),
            noise_floor_bits: 0.0,
        })
        .unwrap();
        assert!(text.contains("per-op attribution"), "{text}");
        assert!(text.contains("per-layer attribution"), "{text}");
        assert!(text.contains("CCmult"), "{text}");
        assert!(text.contains("err(pp)"), "{text}");

        let json = run(&Command::Infer {
            seed: 3,
            report: "json".into(),
            noise_floor_bits: 0.0,
        })
        .unwrap();
        assert!(json.contains("\"schema\": \"fxhenn-infer-report/v1\""), "{json}");
        assert!(json.contains("\"model_error_pct\""), "{json}");
        assert!(json.contains("\"key\": \"Rescale\""), "{json}");
        assert!(json.contains("\"layers\""), "{json}");
        // Share-space model error sums to ~zero across op rows.
        let errs: Vec<f64> = json
            .lines()
            .take_while(|l| !l.contains("\"layers\""))
            .filter_map(|l| {
                l.split("\"model_error_pct\": ")
                    .nth(1)
                    .and_then(|t| t.trim_end_matches(['}', ',', ' ']).parse().ok())
            })
            .collect();
        assert!(!errs.is_empty(), "{json}");
        let sum: f64 = errs.iter().sum();
        assert!(sum.abs() < 0.1, "op model errors sum to {sum}");
    }

    #[test]
    fn design_runs_for_mnist_on_acu9eg() {
        let cmd = Command::Design {
            model: "mnist".into(),
            device: "acu9eg".into(),
            noise_floor_bits: fxhenn_nn::DEFAULT_PLAN_FLOOR_BITS,
        };
        let out = run(&cmd).unwrap();
        assert!(out.contains("FxHENN-MNIST"));
        assert!(out.contains("KeySwitch"));
    }

    #[test]
    fn unreachable_noise_floor_rejects_the_design() {
        // An absurd admission floor turns an otherwise feasible flow
        // into a typed noise-admission failure naming the binding layer.
        let err = run(&Command::Design {
            model: "mnist".into(),
            device: "acu9eg".into(),
            noise_floor_bits: 1e6,
        })
        .unwrap_err();
        assert_eq!(err.phase(), "noise-admission");
        assert!(
            err.to_string().contains("no noise-feasible evaluation"),
            "{err}"
        );
    }

    #[test]
    fn unreachable_noise_floor_fails_infer_typed() {
        // The runtime floor fires inside the executor's evaluator: the
        // inference fails with the typed exhaustion error instead of
        // decrypting garbage.
        let err = run(&Command::Infer {
            seed: 3,
            report: "text".into(),
            noise_floor_bits: 1e6,
        })
        .unwrap_err();
        assert_eq!(err.phase(), "infer");
        assert!(err.to_string().contains("noise budget exhausted"), "{err}");
    }
}

//! Key-switching digit trade-off study (beyond the paper): the hybrid
//! scheme's `dnum` knob trades evaluation-key size against special-prime
//! overhead — the design space HEAX (the paper's module reference)
//! navigates. Measured on the real software implementation: key bytes on
//! the wire, rotate wall-clock, and decryption error.
//!
//! Run with: `cargo run --release -p fxhenn-bench --bin keyswitch_tradeoff`

use fxhenn::ckks::serialize::encode_relin_key;
use fxhenn::ckks::{CkksContext, CkksParams, Decryptor, Encryptor, Evaluator, KeyGenerator};
use fxhenn_bench::header;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    header(
        "Hybrid key-switching digit trade-off (N=1024, L=6, software)",
        "Sec. II-A / HEAX design space",
    );
    println!(
        "{:>6} {:>10} {:>14} {:>14} {:>14} {:>12}",
        "dnum", "specials", "relin key(KB)", "rotate(ms)", "relin(ms)", "max err"
    );

    for dnum in [6usize, 3, 2, 1] {
        let params = CkksParams::insecure_toy(6)
            .with_key_switch_digits(dnum)
            .expect("valid");
        let ctx = CkksContext::new(params);
        let mut kg = KeyGenerator::new(&ctx, StdRng::seed_from_u64(9));
        let pk = kg.public_key();
        let sk = kg.secret_key();
        let rk = kg.relin_key();
        let gks = kg.galois_keys(&[1]);
        let mut enc = Encryptor::new(&ctx, pk, StdRng::seed_from_u64(10));
        let dec = Decryptor::new(&ctx, sk);
        let mut ev = Evaluator::new(&ctx);

        let key_kb = encode_relin_key(&rk).len() as f64 / 1024.0;

        let values = [1.5f64, -2.0, 3.0, 0.5];
        let ct = enc.encrypt(&values);

        let t0 = Instant::now();
        let mut rot = ct.clone();
        for _ in 0..10 {
            rot = ev.rotate(&ct, 1, &gks).expect("bench rotate");
        }
        let rotate_ms = t0.elapsed().as_secs_f64() * 100.0; // per op

        let tri = ev.mul(&ct, &ct).expect("bench mul");
        let t1 = Instant::now();
        let mut lin = ev.relinearize(&tri, &rk).expect("bench relinearize");
        for _ in 0..9 {
            lin = ev.relinearize(&tri, &rk).expect("bench relinearize");
        }
        let relin_ms = t1.elapsed().as_secs_f64() * 100.0;

        let out = ev.rescale(&lin).expect("bench rescale");
        let got = dec.decrypt(&out);
        let err = values
            .iter()
            .zip(&got)
            .map(|(&v, &g)| (v * v - g).abs())
            .fold(0.0f64, f64::max);
        let _ = rot;
        println!(
            "{:>6} {:>10} {:>14.1} {:>14.3} {:>14.3} {:>12.2e}",
            dnum,
            ctx.special_moduli().len(),
            key_kb,
            rotate_ms,
            relin_ms,
            err
        );
    }
    println!();
    println!(
        "Fewer digits shrink the evaluation keys (fewer, larger components) at the \
         cost of more special primes in the extended basis; correctness holds at \
         every configuration (grouped_digits tests)."
    );
}

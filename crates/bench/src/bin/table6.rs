//! Table VI: information about the benchmark HE-CNN networks — layers,
//! HOP counts, accuracy and encoded-model size.
//!
//! Run with: `cargo run --release -p fxhenn-bench --bin table6`

use fxhenn_bench::{cifar10_program, delta, header, mnist_program};

fn main() {
    header("Table VI — benchmark HE-CNN networks", "Table VI");
    // Paper rows: (network, layers, HOPs x1e3, accuracy %, model MB).
    // Accuracy is echoed from the paper: this reproduction ships no
    // datasets or trained weights (DESIGN.md), so accuracy cannot be
    // re-measured; functional correctness is proven HE-vs-plaintext
    // instead (see `he_cnn_functional` tests).
    let rows = [
        (mnist_program(), "Cnv1,Act1,Fc1,Act2,Fc2", 0.83f64, 98.9, 15.57f64),
        (
            cifar10_program(),
            "Cnv1,Act1,Cnv2,Act2,Fc2",
            82.73,
            74.1,
            2471.25,
        ),
    ];

    println!(
        "{:<16} {:<24} | {:>9} {:>9} {:>6} | {:>8} | {:>10} {:>10} {:>6}",
        "Network", "Layers", "HOPs(e3)", "(paper)", "Δ", "Acc(%)*", "Size(MB)", "(paper)", "Δ"
    );
    for (prog, layers, paper_hops, paper_acc, paper_mb) in rows {
        let hops = prog.hop_count() as f64 / 1e3;
        let mb = prog.model_size_bytes() as f64 / (1024.0 * 1024.0);
        println!(
            "{:<16} {:<24} | {:>9.2} {:>9.2} {:>6} | {:>8.1} | {:>10.2} {:>10.2} {:>6}",
            prog.network_name,
            layers,
            hops,
            paper_hops,
            delta(hops, paper_hops),
            paper_acc,
            mb,
            paper_mb,
            delta(mb, paper_mb),
        );
    }
    println!();
    println!("* accuracy echoed from the paper (no datasets in this reproduction).");
    println!(
        "Both networks share multiplication depth 5; CIFAR10 carries two orders of \
         magnitude more HOPs — the deployment challenge FxHENN targets."
    );
}
